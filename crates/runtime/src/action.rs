//! CA action definitions (§3.1).
//!
//! "The interface to a CA action specifies the objects that are to be
//! manipulated by the CA action and the roles that are to manipulate these
//! objects. In order to perform a CA action, a group of execution threads
//! must come together and agree to perform each role in the CA action
//! concurrently with one thread per role."
//!
//! An [`ActionDef`] declares the roles (each statically bound to the thread
//! that will perform it — §3.3.1 assumes "each participating thread knows
//! the set of all participating threads"), the exception graph used for
//! resolution, the interface exceptions `ε` that may be signalled, and the
//! per-role handlers: exception handlers, abortion handlers and undo hooks.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use caa_core::exception::{Exception, ExceptionId};
use caa_core::ids::{ActionId, RoleId, ThreadId};
use caa_core::outcome::HandlerVerdict;
use caa_core::time::VirtualDuration;
use caa_exgraph::{ExceptionGraph, ExceptionGraphBuilder};

use crate::context::Ctx;
use crate::error::Step;

/// Exception-handler body: attempts forward recovery for the resolving
/// exception the thread was committed to, then reports a verdict.
pub type Handler = Arc<dyn Fn(&mut Ctx) -> Step<HandlerVerdict> + Send + Sync>;

/// Abortion-handler body: runs when an enclosing action aborts this action;
/// may produce an exception `Eab` to be raised in the enclosing action.
pub type AbortHandler = Arc<dyn Fn(&mut Ctx) -> Step<Option<Exception>> + Send + Sync>;

/// Undo hook: application-level compensation executed during the undo round
/// of the signalling algorithm (§3.4). Returns whether undo succeeded.
pub type UndoHook = Arc<dyn Fn(&mut Ctx) -> Step<bool> + Send + Sync>;

static NEXT_DEF_ID: AtomicU32 = AtomicU32::new(1);

/// Errors reported while building an [`ActionDef`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DefError {
    /// The action declares no roles.
    NoRoles,
    /// Two roles share a name.
    DuplicateRole(String),
    /// Two roles are bound to the same thread.
    DuplicateThread(ThreadId),
    /// A handler refers to a role name that was never declared.
    UnknownRole(String),
}

impl fmt::Display for DefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefError::NoRoles => f.write_str("a CA action needs at least one role"),
            DefError::DuplicateRole(name) => write!(f, "role {name} declared twice"),
            DefError::DuplicateThread(t) => {
                write!(f, "thread {t} bound to more than one role")
            }
            DefError::UnknownRole(name) => {
                write!(f, "handler refers to undeclared role {name}")
            }
        }
    }
}

impl std::error::Error for DefError {}

pub(crate) struct DefInner {
    /// Interned: shared with every `Enter` event the runtime emits.
    pub(crate) name: Arc<str>,
    pub(crate) def_id: u32,
    /// Interned: shared with every `Enter` event the runtime emits.
    pub(crate) role_names: Vec<Arc<str>>,
    pub(crate) role_threads: Vec<ThreadId>,
    /// All participating threads, sorted ascending (the ordered group `GA`).
    pub(crate) group: Vec<ThreadId>,
    pub(crate) graph: Arc<ExceptionGraph>,
    pub(crate) interface: Vec<ExceptionId>,
    pub(crate) handlers: HashMap<(RoleId, ExceptionId), Handler>,
    pub(crate) fallback_handlers: HashMap<RoleId, Handler>,
    pub(crate) abort_handlers: HashMap<RoleId, AbortHandler>,
    pub(crate) undo_hooks: HashMap<RoleId, UndoHook>,
    pub(crate) signal_timeout: Option<VirtualDuration>,
    pub(crate) exit_timeout: Option<VirtualDuration>,
    pub(crate) resolution_timeout: Option<VirtualDuration>,
    pub(crate) corruption_exception: ExceptionId,
}

impl DefInner {
    pub(crate) fn role_id(&self, name: &str) -> Option<RoleId> {
        self.role_names
            .iter()
            .position(|r| &**r == name)
            .map(|i| RoleId::new(u32::try_from(i).expect("role count bounded")))
    }

    pub(crate) fn thread_of(&self, role: RoleId) -> ThreadId {
        self.role_threads[role.index()]
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn role_of_thread(&self, thread: ThreadId) -> Option<RoleId> {
        self.role_threads
            .iter()
            .position(|&t| t == thread)
            .map(|i| RoleId::new(u32::try_from(i).expect("role count bounded")))
    }

    /// Handler lookup: exact (role, exception) match, then the role's
    /// fallback. Returns `None` when the default policy applies.
    pub(crate) fn handler_for(&self, role: RoleId, exception: &ExceptionId) -> Option<Handler> {
        self.handlers
            .get(&(role, exception.clone()))
            .or_else(|| self.fallback_handlers.get(&role))
            .cloned()
    }

    /// The default verdict when no handler exists: the universal exception
    /// "usually leads to the signalling of a undo or failure exception"
    /// (§3.2), and an unhandled exception "will be propagated" (§2.1). An
    /// unhandled crash exception is presume-ƒ: the action failed and the
    /// dead participant's effects cannot be assumed undone.
    pub(crate) fn default_verdict(exception: &ExceptionId) -> HandlerVerdict {
        if exception.is_universal() {
            HandlerVerdict::Undo
        } else if exception.is_crash() {
            HandlerVerdict::Fail
        } else {
            HandlerVerdict::Signal(exception.clone())
        }
    }
}

impl fmt::Debug for DefInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActionDef")
            .field("name", &self.name)
            .field("roles", &self.role_names)
            .field("group", &self.group)
            .finish()
    }
}

/// An immutable CA action definition; cheap to clone and share between
/// threads.
///
/// # Examples
///
/// ```
/// use caa_runtime::ActionDef;
/// use caa_core::ids::ThreadId;
/// use caa_core::outcome::HandlerVerdict;
/// use caa_exgraph::ExceptionGraphBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = ExceptionGraphBuilder::new()
///     .resolves("dual_motor_failures", ["vm_stop", "rm_stop"])
///     .build()?;
/// let def = ActionDef::builder("Move_Loaded_Table")
///     .role("table", ThreadId::new(0))
///     .role("sensor", ThreadId::new(1))
///     .graph(graph)
///     .interface(["L_PLATE"])
///     .handler("table", "dual_motor_failures", |_ctx| {
///         Ok(HandlerVerdict::Recovered)
///     })
///     .build()?;
/// assert_eq!(def.name(), "Move_Loaded_Table");
/// assert_eq!(def.roles().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct ActionDef {
    pub(crate) inner: Arc<DefInner>,
}

impl ActionDef {
    /// Starts building an action definition.
    pub fn builder(name: impl Into<Arc<str>>) -> ActionDefBuilder {
        ActionDefBuilder {
            name: name.into(),
            roles: Vec::new(),
            graph: None,
            interface: Vec::new(),
            handlers: Vec::new(),
            fallbacks: Vec::new(),
            aborts: Vec::new(),
            undos: Vec::new(),
            signal_timeout: None,
            exit_timeout: None,
            resolution_timeout: None,
            corruption_exception: ExceptionId::new("l_mes"),
        }
    }

    /// The action's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The declared role names, in declaration order.
    #[must_use]
    pub fn roles(&self) -> &[Arc<str>] {
        &self.inner.role_names
    }

    /// The participating threads, sorted ascending.
    #[must_use]
    pub fn group(&self) -> &[ThreadId] {
        &self.inner.group
    }

    /// The exception graph used to resolve concurrent exceptions.
    #[must_use]
    pub fn graph(&self) -> &ExceptionGraph {
        &self.inner.graph
    }

    /// The interface exceptions `ε` this action may signal (µ and ƒ are
    /// always possible and not listed).
    #[must_use]
    pub fn interface(&self) -> &[ExceptionId] {
        &self.inner.interface
    }
}

impl fmt::Debug for ActionDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Builder for [`ActionDef`] ([C-BUILDER]).
#[must_use = "builders do nothing until .build() is called"]
pub struct ActionDefBuilder {
    name: Arc<str>,
    roles: Vec<(Arc<str>, ThreadId)>,
    graph: Option<Arc<ExceptionGraph>>,
    interface: Vec<ExceptionId>,
    handlers: Vec<(String, ExceptionId, Handler)>,
    fallbacks: Vec<(String, Handler)>,
    aborts: Vec<(String, AbortHandler)>,
    undos: Vec<(String, UndoHook)>,
    signal_timeout: Option<VirtualDuration>,
    exit_timeout: Option<VirtualDuration>,
    resolution_timeout: Option<VirtualDuration>,
    corruption_exception: ExceptionId,
}

impl fmt::Debug for ActionDefBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActionDefBuilder")
            .field("name", &self.name)
            .field("roles", &self.roles)
            .finish()
    }
}

impl ActionDefBuilder {
    /// Declares a role and binds it to the thread that will perform it.
    pub fn role(mut self, name: impl Into<Arc<str>>, thread: impl Into<ThreadId>) -> Self {
        self.roles.push((name.into(), thread.into()));
        self
    }

    /// Sets the exception graph. Without one, every exception resolves
    /// through a minimal graph containing only the universal exception.
    pub fn graph(mut self, graph: ExceptionGraph) -> Self {
        self.graph = Some(Arc::new(graph));
        self
    }

    /// [`ActionDefBuilder::graph`] with an already-shared graph: action
    /// definitions built from the same graph share one allocation.
    /// Scenario executors cache resolution lattices across seeds this way
    /// (the lattice is a pure function of the declared exceptions).
    pub fn graph_shared(mut self, graph: Arc<ExceptionGraph>) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Declares the interface exceptions `ε` this action may signal.
    pub fn interface<I, T>(mut self, exceptions: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<ExceptionId>,
    {
        self.interface
            .extend(exceptions.into_iter().map(Into::into));
        self
    }

    /// Registers `role`'s handler for the resolving exception `exception`.
    pub fn handler(
        mut self,
        role: impl Into<String>,
        exception: impl Into<ExceptionId>,
        f: impl Fn(&mut Ctx) -> Step<HandlerVerdict> + Send + Sync + 'static,
    ) -> Self {
        self.handlers
            .push((role.into(), exception.into(), Arc::new(f)));
        self
    }

    /// Registers `role`'s handler for the universal exception.
    pub fn universal_handler(
        self,
        role: impl Into<String>,
        f: impl Fn(&mut Ctx) -> Step<HandlerVerdict> + Send + Sync + 'static,
    ) -> Self {
        self.handler(role, ExceptionId::universal(), f)
    }

    /// Registers a catch-all handler consulted when `role` has no handler
    /// for the resolving exception.
    pub fn fallback_handler(
        mut self,
        role: impl Into<String>,
        f: impl Fn(&mut Ctx) -> Step<HandlerVerdict> + Send + Sync + 'static,
    ) -> Self {
        self.fallbacks.push((role.into(), Arc::new(f)));
        self
    }

    /// Registers `role`'s abortion handler, run when an enclosing action
    /// aborts this one; it may return an exception `Eab` to be raised in
    /// the enclosing action (§3.3.1).
    pub fn abort_handler(
        mut self,
        role: impl Into<String>,
        f: impl Fn(&mut Ctx) -> Step<Option<Exception>> + Send + Sync + 'static,
    ) -> Self {
        self.aborts.push((role.into(), Arc::new(f)));
        self
    }

    /// Registers `role`'s undo hook, executed during the undo round of the
    /// signalling algorithm; returns whether application-level compensation
    /// succeeded (§3.4).
    pub fn undo_hook(
        mut self,
        role: impl Into<String>,
        f: impl Fn(&mut Ctx) -> Step<bool> + Send + Sync + 'static,
    ) -> Self {
        self.undos.push((role.into(), Arc::new(f)));
        self
    }

    /// Bounds how long the signalling algorithm waits for each peer
    /// announcement; a missing announcement is then treated as the failure
    /// exception ƒ (the §3.4 crash/loss extension).
    pub fn signal_timeout(mut self, timeout: VirtualDuration) -> Self {
        self.signal_timeout = Some(timeout);
        self
    }

    /// Bounds how long the exit protocol waits for peer votes — the §3.4
    /// timeout generalised from signalling to exit. When the bound expires
    /// with votes missing, the peer is presumed crashed and the action
    /// resolves to abortion (outcome ƒ / [`ActionOutcome::Failed`]) instead
    /// of deadlocking. The bound must exceed any live participant's exit
    /// skew (latency plus scheduling), or slow peers are misclassified as
    /// crashed. Without it (the default) the exit wait is unbounded.
    ///
    /// [`ActionOutcome::Failed`]: caa_core::outcome::ActionOutcome::Failed
    pub fn exit_timeout(mut self, timeout: VirtualDuration) -> Self {
        self.exit_timeout = Some(timeout);
        self
    }

    /// Bounds how long the resolution algorithm's collection loop waits
    /// for a peer's `Exception`/`Suspended`/`Commit` before presuming the
    /// silent peer crashed — the membership extension (see
    /// [`crate::membership`]). When the per-round bound expires, the
    /// threads this participant is blocked on are removed from the
    /// action's membership view, a crash exception is synthesized on their
    /// behalf, a `ViewChange` is broadcast so all survivors agree on the
    /// new view, and resolution re-runs over the live members.
    ///
    /// Like [`ActionDefBuilder::exit_timeout`], the bound must exceed any
    /// live participant's response skew (latency plus scheduling plus
    /// resolution delay) or slow peers are misclassified as crashed.
    /// Without it (the default) the collection wait is unbounded and a
    /// crashed peer deadlocks the recovery — the pre-membership behaviour.
    pub fn resolution_timeout(mut self, timeout: VirtualDuration) -> Self {
        self.resolution_timeout = Some(timeout);
        self
    }

    /// The internal exception raised when a corrupted message is delivered
    /// while this action runs (defaults to `l_mes`, as in the production
    /// cell's Figure 7).
    pub fn corruption_exception(mut self, exception: impl Into<ExceptionId>) -> Self {
        self.corruption_exception = exception.into();
        self
    }

    /// Validates and freezes the definition.
    ///
    /// # Errors
    ///
    /// See [`DefError`].
    pub fn build(self) -> Result<ActionDef, DefError> {
        if self.roles.is_empty() {
            return Err(DefError::NoRoles);
        }
        let mut role_names: Vec<Arc<str>> = Vec::with_capacity(self.roles.len());
        let mut role_threads = Vec::with_capacity(self.roles.len());
        for (name, thread) in &self.roles {
            if role_names.contains(name) {
                return Err(DefError::DuplicateRole(name.to_string()));
            }
            if role_threads.contains(thread) {
                return Err(DefError::DuplicateThread(*thread));
            }
            role_names.push(Arc::clone(name));
            role_threads.push(*thread);
        }
        let mut group = role_threads.clone();
        group.sort_unstable();

        let graph = match self.graph {
            Some(g) => g,
            None => Arc::new(
                ExceptionGraphBuilder::new()
                    .exception(ExceptionId::universal())
                    .build()
                    .expect("singleton universal graph is valid"),
            ),
        };

        let role_id_of = |name: &str| -> Result<RoleId, DefError> {
            role_names
                .iter()
                .position(|r| &**r == name)
                .map(|i| RoleId::new(u32::try_from(i).expect("bounded")))
                .ok_or_else(|| DefError::UnknownRole(name.to_owned()))
        };

        let mut handlers = HashMap::new();
        for (role, exc, f) in self.handlers {
            handlers.insert((role_id_of(&role)?, exc), f);
        }
        let mut fallback_handlers = HashMap::new();
        for (role, f) in self.fallbacks {
            fallback_handlers.insert(role_id_of(&role)?, f);
        }
        let mut abort_handlers = HashMap::new();
        for (role, f) in self.aborts {
            abort_handlers.insert(role_id_of(&role)?, f);
        }
        let mut undo_hooks = HashMap::new();
        for (role, f) in self.undos {
            undo_hooks.insert(role_id_of(&role)?, f);
        }

        Ok(ActionDef {
            inner: Arc::new(DefInner {
                name: self.name,
                def_id: NEXT_DEF_ID.fetch_add(1, Ordering::Relaxed),
                role_names,
                role_threads,
                group,
                graph,
                interface: self.interface,
                handlers,
                fallback_handlers,
                abort_handlers,
                undo_hooks,
                signal_timeout: self.signal_timeout,
                exit_timeout: self.exit_timeout,
                resolution_timeout: self.resolution_timeout,
                corruption_exception: self.corruption_exception,
            }),
        })
    }
}

/// Builds the id of the `instance`-th entry into definition `def_id` within
/// the parent action instance `parent_serial` (0 for top-level entries).
///
/// Instance numbering is scoped to the *parent instance*: cooperating
/// threads always agree on their common parent (the exit and recovery
/// protocols synchronise its completion), so they mint identical ids for
/// each nested action even when earlier recoveries made some of them skip
/// nested actions the others entered. The serial is a 64-bit mix of the
/// three components; collisions are vanishingly unlikely for realistic run
/// lengths.
pub(crate) fn make_action_id(
    def_id: u32,
    parent_serial: u64,
    instance: u32,
    depth: u32,
) -> ActionId {
    let mut z = (u64::from(def_id) << 40)
        ^ parent_serial.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (u64::from(instance).wrapping_add(1) << 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    ActionId::with_depth(z, depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_roles() {
        assert_eq!(
            ActionDef::builder("x").build().unwrap_err(),
            DefError::NoRoles
        );
        let err = ActionDef::builder("x")
            .role("a", ThreadId::new(0))
            .role("a", ThreadId::new(1))
            .build()
            .unwrap_err();
        assert_eq!(err, DefError::DuplicateRole("a".into()));
        let err = ActionDef::builder("x")
            .role("a", ThreadId::new(0))
            .role("b", ThreadId::new(0))
            .build()
            .unwrap_err();
        assert_eq!(err, DefError::DuplicateThread(ThreadId::new(0)));
        let err = ActionDef::builder("x")
            .role("a", ThreadId::new(0))
            .handler("ghost", "e", |_| Ok(HandlerVerdict::Recovered))
            .build()
            .unwrap_err();
        assert_eq!(err, DefError::UnknownRole("ghost".into()));
    }

    #[test]
    fn group_is_sorted_regardless_of_declaration_order() {
        let def = ActionDef::builder("x")
            .role("b", ThreadId::new(5))
            .role("a", ThreadId::new(2))
            .build()
            .unwrap();
        assert_eq!(def.group(), &[ThreadId::new(2), ThreadId::new(5)]);
        assert_eq!(def.roles(), &[Arc::from("b"), Arc::from("a")]);
    }

    #[test]
    fn default_graph_contains_only_universal() {
        let def = ActionDef::builder("x")
            .role("a", ThreadId::new(0))
            .build()
            .unwrap();
        assert_eq!(def.graph().len(), 1);
        assert!(def.graph().root().is_universal());
    }

    #[test]
    fn handler_lookup_precedence() {
        let def = ActionDef::builder("x")
            .role("a", ThreadId::new(0))
            .handler("a", "e1", |_| Ok(HandlerVerdict::Recovered))
            .fallback_handler("a", |_| Ok(HandlerVerdict::Fail))
            .build()
            .unwrap();
        let role = RoleId::new(0);
        assert!(def
            .inner
            .handler_for(role, &ExceptionId::new("e1"))
            .is_some());
        // Unknown exception falls back to the role's fallback handler.
        assert!(def
            .inner
            .handler_for(role, &ExceptionId::new("other"))
            .is_some());
        let bare = ActionDef::builder("y")
            .role("a", ThreadId::new(0))
            .build()
            .unwrap();
        assert!(bare
            .inner
            .handler_for(role, &ExceptionId::new("other"))
            .is_none());
    }

    #[test]
    fn default_verdicts() {
        assert_eq!(
            DefInner::default_verdict(&ExceptionId::universal()),
            HandlerVerdict::Undo
        );
        assert_eq!(
            DefInner::default_verdict(&ExceptionId::new("L_PLATE")),
            HandlerVerdict::Signal(ExceptionId::new("L_PLATE"))
        );
    }

    #[test]
    fn action_ids_are_deterministic_and_distinct() {
        let a = make_action_id(7, 0, 42, 3);
        let b = make_action_id(7, 0, 42, 3);
        assert_eq!(a, b, "same inputs must mint the same id on every thread");
        assert_eq!(a.depth(), 3);
        // Varying any component changes the id.
        assert_ne!(make_action_id(8, 0, 42, 3).serial(), a.serial());
        assert_ne!(make_action_id(7, 1, 42, 3).serial(), a.serial());
        assert_ne!(make_action_id(7, 0, 43, 3).serial(), a.serial());
        // A nested action under two different parent instances differs even
        // at the same local index.
        let p1 = make_action_id(1, 0, 0, 0);
        let p2 = make_action_id(1, 0, 1, 0);
        assert_ne!(
            make_action_id(2, p1.serial(), 0, 1),
            make_action_id(2, p2.serial(), 0, 1)
        );
    }

    #[test]
    fn def_ids_are_unique() {
        let a = ActionDef::builder("a")
            .role("r", ThreadId::new(0))
            .build()
            .unwrap();
        let b = ActionDef::builder("b")
            .role("r", ThreadId::new(0))
            .build()
            .unwrap();
        assert_ne!(a.inner.def_id, b.inner.def_id);
    }

    #[test]
    fn role_queries() {
        let def = ActionDef::builder("x")
            .role("table", ThreadId::new(3))
            .role("robot", ThreadId::new(1))
            .build()
            .unwrap();
        let table = def.inner.role_id("table").unwrap();
        assert_eq!(def.inner.thread_of(table), ThreadId::new(3));
        assert_eq!(
            def.inner.role_of_thread(ThreadId::new(1)),
            def.inner.role_id("robot")
        );
        assert_eq!(def.inner.role_of_thread(ThreadId::new(9)), None);
        assert!(def.inner.role_id("ghost").is_none());
    }
}
