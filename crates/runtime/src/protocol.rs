//! Pluggable resolution protocols.
//!
//! The run-time drives concurrent exception handling through a
//! [`ResolutionProtocol`]: the paper's algorithm ([`XrrResolution`], §3.3.2)
//! is the default, and the baseline algorithms it is compared against
//! (Campbell & Randell 1986, Romanovsky et al. 1996) implement the same
//! trait in the `caa-baselines` crate — mirroring how the paper "modelled
//! the CR algorithm by updating our algorithm and kept the rest of the CA
//! action support unchanged" (§5.3).

use std::collections::BTreeMap;
use std::fmt;

use caa_core::exception::{Exception, ExceptionId};
use caa_core::ids::{ActionId, ThreadId};
use caa_core::message::{no_removals, Message};
use caa_core::state::ParticipantState;
use caa_exgraph::ExceptionGraph;

/// Static context a resolver state receives with every event.
#[derive(Debug, Clone, Copy)]
pub struct ProtoCtx<'a> {
    /// This participant's thread id.
    pub me: ThreadId,
    /// The action instance being recovered.
    pub action: ActionId,
    /// The threads participating in this recovery, sorted ascending.
    ///
    /// This is the *current membership view*, not necessarily the action's
    /// full group: when the crash-aware extension removes a
    /// presumed-crashed participant (see [`crate::membership`]), subsequent
    /// events see the shrunken view here — quorum and resolver election
    /// range over live members only, while entries recorded for removed
    /// members (their real raises, or synthesized crash exceptions) still
    /// feed the resolution function.
    pub group: &'a [ThreadId],
    /// The action's exception graph.
    pub graph: &'a ExceptionGraph,
}

impl ProtoCtx<'_> {
    /// The other members of the group (everyone but `me`).
    pub fn peers(&self) -> impl Iterator<Item = ThreadId> + '_ {
        let me = self.me;
        self.group.iter().copied().filter(move |&t| t != me)
    }
}

/// An event fed to a [`ResolverState`].
#[derive(Debug)]
pub enum ProtoEvent<'a> {
    /// This thread raised `e` in the action (including an abortion-handler
    /// exception after a nested abort).
    LocalRaise(&'a Exception),
    /// This thread halts normal computation because of exceptions raised by
    /// peers (transition N → S).
    LocalSuspend,
    /// A control message of the recovery protocol arrived.
    Control(&'a Message),
}

/// What a [`ResolverState`] wants done after an event.
#[derive(Debug, Default)]
pub struct ProtoActions {
    /// Messages to send, in order.
    pub outbound: Vec<(ThreadId, Message)>,
    /// How many times the resolution procedure (graph search) was invoked
    /// while processing this event. The driver charges `Treso` virtual time
    /// per invocation and the statistics feed Figure 13(b).
    pub resolve_invocations: u32,
    /// When set, agreement is reached for this thread: every participant
    /// must handle this resolving exception.
    pub resolved: Option<ExceptionId>,
}

/// Per-(thread, action-instance) protocol state.
pub trait ResolverState: Send {
    /// Processes one event; returns messages to send and, eventually, the
    /// resolving exception.
    fn on_event(&mut self, ctx: &ProtoCtx<'_>, event: ProtoEvent<'_>) -> ProtoActions;

    /// Current N/X/S state of this participant, for diagnostics.
    fn participant_state(&self) -> ParticipantState;

    /// The threads whose next protocol message this participant's progress
    /// is currently blocked on: group members with no recorded entry, or —
    /// once every entry is in — the elected resolver whose `Commit` has not
    /// arrived. The membership extension's failure detector turns exactly
    /// this set into crash suspects when the bounded resolution wait
    /// expires.
    ///
    /// The default (for protocols without membership support) reports
    /// nothing, which makes a configured
    /// [`resolution timeout`](crate::ActionDefBuilder::resolution_timeout)
    /// a fatal protocol error on expiry rather than a silent misdiagnosis.
    fn waiting_on(&self, ctx: &ProtoCtx<'_>) -> Vec<ThreadId> {
        let _ = ctx;
        Vec::new()
    }

    /// Applies a membership view change: `ctx.group` is already the
    /// shrunken view, `removed` lists the threads this change removed, and
    /// `synthesized` carries the crash exception synthesized on behalf of
    /// each removed thread that never announced anything (presume-ƒ). The
    /// resolver records the synthesized entries, re-elects over the new
    /// view and — if this participant now holds the quorum and the
    /// election — resolves and commits.
    ///
    /// The default is a no-op: baseline protocols without membership
    /// support ignore view changes (and must not be paired with a
    /// resolution timeout).
    fn on_view_change(
        &mut self,
        ctx: &ProtoCtx<'_>,
        removed: &[ThreadId],
        synthesized: &[Exception],
    ) -> ProtoActions {
        let _ = (ctx, removed, synthesized);
        ProtoActions::default()
    }
}

/// Factory for [`ResolverState`]s — one strategy per system.
pub trait ResolutionProtocol: Send + Sync + fmt::Debug {
    /// Short name used in reports (e.g. `"xrr98"`, `"cr86"`).
    fn name(&self) -> &'static str;

    /// Creates the state driving one action instance's recovery at one
    /// participant.
    fn new_state(&self) -> Box<dyn ResolverState>;
}

/// The paper's resolution algorithm (§3.3.2).
///
/// * A thread raising an exception broadcasts `Exception(A, Ti, E)`.
/// * A thread that did not raise but learns of exceptions broadcasts
///   `Suspended(A, Ti, S)` once.
/// * When a thread holds an entry (exception or suspension) from **every**
///   participant and it has *the biggest identifying number among threads in
///   the exceptional state*, it alone resolves the accumulated exceptions
///   through the exception graph and broadcasts `Commit(A, E)`.
///
/// Message complexity: `(N + 1) × (N − 1)` without nesting, independent of
/// how many exceptions were raised concurrently (§3.3.3); the resolution
/// procedure runs exactly once per recovery.
#[derive(Debug, Default, Clone, Copy)]
pub struct XrrResolution;

impl ResolutionProtocol for XrrResolution {
    fn name(&self) -> &'static str {
        "xrr98"
    }

    fn new_state(&self) -> Box<dyn ResolverState> {
        Box::new(XrrState::default())
    }
}

/// One participant's view of the §3.3.2 algorithm: the paper's `LE` list
/// plus its own N/X/S state.
#[derive(Debug, Default)]
struct XrrState {
    state: ParticipantState,
    /// The `LE` list: one entry per participant — either the exception it
    /// raised or its suspension. `BTreeMap` keeps deterministic order.
    entries: BTreeMap<ThreadId, Entry>,
    resolved: Option<ExceptionId>,
}

#[derive(Debug, Clone)]
enum Entry {
    Exception(ExceptionId),
    Suspended,
}

impl XrrState {
    /// The thread elected to perform resolution over the current view:
    /// the biggest identifying number among *live* threads in the
    /// exceptional state (§3.3.2). When a view change left no live
    /// exceptional thread (the only raisers crashed after broadcasting,
    /// so every survivor is merely suspended), the biggest live thread
    /// resolves instead — the crash entries guarantee the raised set is
    /// non-empty, and the rule is a pure function of the shared view, so
    /// every survivor elects the same thread. Crash-free recoveries never
    /// reach the fallback: the group always contains a live raiser.
    fn elected(&self, ctx: &ProtoCtx<'_>) -> Option<ThreadId> {
        let max_exceptional = self
            .entries
            .iter()
            .filter(|(t, e)| ctx.group.contains(t) && matches!(e, Entry::Exception(_)))
            .map(|(&t, _)| t)
            .max();
        max_exceptional.or_else(|| ctx.group.last().copied())
    }

    /// "if Ti has all exceptions, or state S, of other threads within A and
    /// Ti has the biggest identifying number among threads with the state X
    /// then resolve exceptions in LEi; Commit(A, E) ⇒ all Tj in GA".
    ///
    /// Quorum and election range over `ctx.group` — the current membership
    /// view — while the raised set also includes entries recorded for
    /// removed members (their pre-crash raises and synthesized crash
    /// exceptions): a participant crash is just another exception to be
    /// resolved concurrently.
    fn try_resolve(&mut self, ctx: &ProtoCtx<'_>, actions: &mut ProtoActions) {
        if self.resolved.is_some() || actions.resolved.is_some() {
            return;
        }
        if !ctx.group.iter().all(|t| self.entries.contains_key(t)) {
            return;
        }
        if self.elected(ctx) != Some(ctx.me) {
            return;
        }
        let raised: Vec<ExceptionId> = self
            .entries
            .values()
            .filter_map(|e| match e {
                Entry::Exception(id) => Some(id.clone()),
                Entry::Suspended => None,
            })
            .collect();
        if raised.is_empty() {
            return;
        }
        let resolved = ctx.graph.resolve(&raised);
        actions.resolve_invocations += 1;
        for peer in ctx.peers() {
            // The recovery driver fills `view_epoch`/`view_removed` in
            // from the frame's membership before the message leaves —
            // resolver states only know the live group, not its history.
            actions.outbound.push((
                peer,
                Message::Commit {
                    action: ctx.action,
                    from: ctx.me,
                    resolved: resolved.clone(),
                    view_epoch: 0,
                    view_removed: no_removals(),
                },
            ));
        }
        self.resolved = Some(resolved.clone());
        actions.resolved = Some(resolved);
    }
}

impl ResolverState for XrrState {
    fn on_event(&mut self, ctx: &ProtoCtx<'_>, event: ProtoEvent<'_>) -> ProtoActions {
        let mut actions = ProtoActions::default();
        match event {
            ProtoEvent::LocalRaise(e) => {
                self.state = ParticipantState::Exceptional;
                self.entries
                    .insert(ctx.me, Entry::Exception(e.id().clone()));
                for peer in ctx.peers() {
                    actions.outbound.push((
                        peer,
                        Message::Exception {
                            action: ctx.action,
                            from: ctx.me,
                            exception: e.clone(),
                        },
                    ));
                }
            }
            ProtoEvent::LocalSuspend => {
                if self.state == ParticipantState::Normal {
                    self.state = ParticipantState::Suspended;
                    self.entries.insert(ctx.me, Entry::Suspended);
                    for peer in ctx.peers() {
                        actions.outbound.push((
                            peer,
                            Message::Suspended {
                                action: ctx.action,
                                from: ctx.me,
                            },
                        ));
                    }
                }
            }
            ProtoEvent::Control(msg) => match msg {
                Message::Exception {
                    from, exception, ..
                } => {
                    self.entries
                        .insert(*from, Entry::Exception(exception.id().clone()));
                }
                Message::Suspended { from, .. } => {
                    // Never demote a raised exception to a suspension.
                    self.entries.entry(*from).or_insert(Entry::Suspended);
                }
                Message::Commit { resolved, .. } => {
                    self.resolved = Some(resolved.clone());
                    actions.resolved = Some(resolved.clone());
                }
                _ => {}
            },
        }
        self.try_resolve(ctx, &mut actions);
        actions
    }

    fn participant_state(&self) -> ParticipantState {
        self.state
    }

    fn waiting_on(&self, ctx: &ProtoCtx<'_>) -> Vec<ThreadId> {
        if self.resolved.is_some() {
            return Vec::new();
        }
        let missing: Vec<ThreadId> = ctx
            .group
            .iter()
            .copied()
            .filter(|t| !self.entries.contains_key(t))
            .collect();
        if !missing.is_empty() {
            return missing;
        }
        // Full quorum: the stall can only be the elected resolver's
        // missing Commit.
        match self.elected(ctx) {
            Some(t) if t != ctx.me => vec![t],
            _ => Vec::new(),
        }
    }

    fn on_view_change(
        &mut self,
        ctx: &ProtoCtx<'_>,
        removed: &[ThreadId],
        synthesized: &[Exception],
    ) -> ProtoActions {
        let mut actions = ProtoActions::default();
        let _ = removed;
        for e in synthesized {
            // A silent peer becomes its synthesized crash exception; a
            // peer that raised before crashing keeps its real exception
            // (never demote a recorded raise).
            let origin = e.origin().expect("synthesized crashes carry their origin");
            self.entries
                .entry(origin)
                .or_insert_with(|| Entry::Exception(e.id().clone()));
        }
        self.try_resolve(ctx, &mut actions);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caa_exgraph::ExceptionGraphBuilder;

    fn graph() -> ExceptionGraph {
        ExceptionGraphBuilder::new()
            .resolves("e1∩e2", ["e1", "e2"])
            .build()
            .unwrap()
    }

    fn tid(n: u32) -> ThreadId {
        ThreadId::new(n)
    }

    fn ctx<'a>(me: u32, group: &'a [ThreadId], graph: &'a ExceptionGraph) -> ProtoCtx<'a> {
        ProtoCtx {
            me: tid(me),
            action: ActionId::top_level(1),
            group,
            graph,
        }
    }

    /// Drives a set of XrrStates to completion by relaying outbound
    /// messages synchronously; returns each thread's resolved exception and
    /// the total message count by kind.
    fn run_to_completion(
        n: u32,
        raises: &[(u32, &str)],
    ) -> (Vec<ExceptionId>, usize, usize, usize, u32) {
        let g = graph();
        let group: Vec<ThreadId> = (0..n).map(tid).collect();
        let mut states: Vec<XrrState> = (0..n).map(|_| XrrState::default()).collect();
        let mut resolved: Vec<Option<ExceptionId>> = vec![None; n as usize];
        let mut queue: Vec<(ThreadId, Message)> = Vec::new();
        let (mut exc, mut susp, mut commit) = (0usize, 0usize, 0usize);
        let mut invocations = 0u32;

        // Raisers raise.
        for &(who, name) in raises {
            let e = Exception::new(name).with_origin(tid(who));
            let c = ctx(who, &group, &g);
            let a = states[who as usize].on_event(&c, ProtoEvent::LocalRaise(&e));
            invocations += a.resolve_invocations;
            if let Some(r) = a.resolved {
                resolved[who as usize] = Some(r);
            }
            queue.extend(a.outbound);
        }
        // Relay until quiescent.
        while let Some((to, msg)) = queue.pop() {
            match msg.kind() {
                caa_core::MessageKind::Exception => exc += 1,
                caa_core::MessageKind::Suspended => susp += 1,
                caa_core::MessageKind::Commit => commit += 1,
                _ => {}
            }
            let idx = to.index();
            let c = ctx(to.as_u32(), &group, &g);
            // First delivery of an exception to a normal thread suspends it
            // (the runtime driver issues LocalSuspend on the trigger).
            let is_trigger = matches!(msg, Message::Exception { .. })
                && states[idx].participant_state() == ParticipantState::Normal
                && !raises.iter().any(|&(who, _)| who == to.as_u32());
            let a = states[idx].on_event(&c, ProtoEvent::Control(&msg));
            invocations += a.resolve_invocations;
            if let Some(r) = a.resolved {
                resolved[idx] = Some(r);
            }
            queue.extend(a.outbound);
            if is_trigger {
                let a = states[idx].on_event(&c, ProtoEvent::LocalSuspend);
                invocations += a.resolve_invocations;
                if let Some(r) = a.resolved {
                    resolved[idx] = Some(r);
                }
                queue.extend(a.outbound);
            }
        }
        let all: Vec<ExceptionId> = resolved
            .into_iter()
            .map(|r| r.expect("every thread must resolve"))
            .collect();
        (all, exc, susp, commit, invocations)
    }

    #[test]
    fn single_exception_single_thread_group() {
        let g = graph();
        let group = [tid(0)];
        let mut s = XrrState::default();
        let c = ctx(0, &group, &g);
        let e = Exception::new("e1");
        let a = s.on_event(&c, ProtoEvent::LocalRaise(&e));
        assert_eq!(a.resolved, Some(ExceptionId::new("e1")));
        assert!(a.outbound.is_empty(), "no peers, no messages");
        assert_eq!(a.resolve_invocations, 1);
    }

    #[test]
    fn one_exception_three_threads_message_count() {
        // §3.3.3 case 1: one exception, no nesting: (N+1)(N-1) messages =
        // (N-1) Exception + (N-1)^2 Suspended + (N-1) Commit.
        let n = 3;
        let (resolved, exc, susp, commit, inv) = run_to_completion(n, &[(0, "e1")]);
        assert!(resolved.iter().all(|r| r == &ExceptionId::new("e1")));
        assert_eq!(exc, (n as usize) - 1);
        assert_eq!(susp, ((n as usize) - 1) * ((n as usize) - 1));
        assert_eq!(commit, (n as usize) - 1);
        assert_eq!(exc + susp + commit, ((n as usize) + 1) * ((n as usize) - 1));
        assert_eq!(inv, 1, "resolution runs exactly once");
    }

    #[test]
    fn all_raise_three_threads_message_count() {
        // §3.3.3 case 2: all N raise: N(N-1) Exceptions + (N-1) Commits.
        let n = 3usize;
        let (resolved, exc, susp, commit, inv) =
            run_to_completion(n as u32, &[(0, "e1"), (1, "e2"), (2, "e1")]);
        assert_eq!(exc, n * (n - 1));
        assert_eq!(susp, 0);
        assert_eq!(commit, n - 1);
        assert_eq!(exc + susp + commit, (n + 1) * (n - 1));
        assert_eq!(inv, 1);
        // e1 and e2 concurrently resolve to their covering exception.
        assert!(resolved.iter().all(|r| r == &ExceptionId::new("e1∩e2")));
    }

    #[test]
    fn resolver_is_highest_id_exceptional_thread() {
        let g = graph();
        let group: Vec<ThreadId> = (0..3).map(tid).collect();
        // T0 raises; T2 suspends; T1 raises. Resolver must be T1? No: both
        // T0 and T1 are exceptional, T1 > T0, and T2 is only suspended, so
        // T1 resolves even though T2 has a bigger id.
        let mut t1 = XrrState::default();
        let c1 = ctx(1, &group, &g);
        let e0 = Exception::new("e1").with_origin(tid(0));
        let e1 = Exception::new("e2").with_origin(tid(1));
        t1.on_event(&c1, ProtoEvent::LocalRaise(&e1));
        t1.on_event(
            &c1,
            ProtoEvent::Control(&Message::Exception {
                action: c1.action,
                from: tid(0),
                exception: e0,
            }),
        );
        let a = t1.on_event(
            &c1,
            ProtoEvent::Control(&Message::Suspended {
                action: c1.action,
                from: tid(2),
            }),
        );
        assert_eq!(a.resolved, Some(ExceptionId::new("e1∩e2")));
        assert_eq!(
            a.outbound.len(),
            2,
            "commit goes to both other participants"
        );
        assert!(a
            .outbound
            .iter()
            .all(|(_, m)| matches!(m, Message::Commit { .. })));
    }

    #[test]
    fn non_resolver_waits_for_commit() {
        let g = graph();
        let group: Vec<ThreadId> = (0..2).map(tid).collect();
        let mut t0 = XrrState::default();
        let c0 = ctx(0, &group, &g);
        let e0 = Exception::new("e1").with_origin(tid(0));
        let e1 = Exception::new("e2").with_origin(tid(1));
        t0.on_event(&c0, ProtoEvent::LocalRaise(&e0));
        // T0 has all entries but T1 > T0 is exceptional too: T0 must wait.
        let a = t0.on_event(
            &c0,
            ProtoEvent::Control(&Message::Exception {
                action: c0.action,
                from: tid(1),
                exception: e1,
            }),
        );
        assert!(a.resolved.is_none());
        assert_eq!(a.resolve_invocations, 0);
        // The commit arrives.
        let a = t0.on_event(
            &c0,
            ProtoEvent::Control(&Message::Commit {
                action: c0.action,
                from: tid(1),
                resolved: ExceptionId::new("e1∩e2"),
                view_epoch: 0,
                view_removed: no_removals(),
            }),
        );
        assert_eq!(a.resolved, Some(ExceptionId::new("e1∩e2")));
    }

    #[test]
    fn suspended_never_overwrites_exception() {
        let g = graph();
        let group: Vec<ThreadId> = (0..2).map(tid).collect();
        let mut t1 = XrrState::default();
        let c1 = ctx(1, &group, &g);
        let e0 = Exception::new("e1").with_origin(tid(0));
        t1.on_event(&c1, ProtoEvent::LocalRaise(&Exception::new("e2")));
        t1.on_event(
            &c1,
            ProtoEvent::Control(&Message::Exception {
                action: c1.action,
                from: tid(0),
                exception: e0,
            }),
        );
        // A stray Suspended from T0 (e.g. protocol race) must not erase e1.
        let a = t1.on_event(
            &c1,
            ProtoEvent::Control(&Message::Suspended {
                action: c1.action,
                from: tid(0),
            }),
        );
        // Resolution already happened on the second event; entries intact.
        assert!(
            a.resolved.is_some() || t1.resolved.is_some(),
            "resolution must have completed with both exceptions known"
        );
        assert_eq!(t1.resolved, Some(ExceptionId::new("e1∩e2")));
    }

    #[test]
    fn duplicate_suspend_event_is_idempotent() {
        let g = graph();
        let group: Vec<ThreadId> = (0..3).map(tid).collect();
        let mut t2 = XrrState::default();
        let c2 = ctx(2, &group, &g);
        let a1 = t2.on_event(&c2, ProtoEvent::LocalSuspend);
        assert_eq!(a1.outbound.len(), 2);
        let a2 = t2.on_event(&c2, ProtoEvent::LocalSuspend);
        assert!(a2.outbound.is_empty(), "suspend broadcast happens once");
        assert_eq!(t2.participant_state(), ParticipantState::Suspended);
    }

    #[test]
    fn protocol_reports_name() {
        assert_eq!(XrrResolution.name(), "xrr98");
        let _state = XrrResolution.new_state();
    }

    #[test]
    fn shareable_across_threads() {
        fn assert_traits<T: Send + Sync>(_: &T) {}
        let p: std::sync::Arc<dyn ResolutionProtocol> = std::sync::Arc::new(XrrResolution);
        assert_traits(&p);
    }
}
