//! The crash-aware membership subsystem: a deterministic,
//! simulation-driven failure detector for *every* bounded round of the
//! protocol — resolution, signalling and exit — plus the reverse
//! direction, epoch-numbered rejoin.
//!
//! §3.4 of the paper bounds waits for the signalling algorithm, and the
//! exit protocol reuses the same rule; this module generalises the
//! machinery so any bounded collection loop can suspect its silent peers.
//! Each action frame carries a `FrameMembership` (crate-internal): the
//! [`MembershipView`] (live members + epoch) this participant holds of the
//! instance. Whatever round is running (see `SuspicionRound`), the
//! driver in [`crate::context`] follows the same detector:
//!
//! 1. **Bounded wait.** Every collection loop waits on a per-round
//!    virtual-time deadline (the
//!    [`recv_deadline`](caa_simnet::Endpoint::recv_deadline) machinery):
//!    resolution on the action's
//!    [`resolution timeout`](crate::ActionDefBuilder::resolution_timeout),
//!    signalling on its
//!    [`signal timeout`](crate::ActionDefBuilder::signal_timeout), exit on
//!    its [`exit timeout`](crate::ActionDefBuilder::exit_timeout) — the PR 4
//!    separation hierarchy (signalling ≪ exit/resolution, scaled per
//!    nesting level) is preserved unchanged.
//! 2. **Suspect computation.** On expiry, the round's state names the
//!    threads this participant is blocked on: for resolution,
//!    [`ResolverState::waiting_on`](crate::protocol::ResolverState::waiting_on)
//!    (view members with no recorded entry, or an elected resolver whose
//!    `Commit` never came); for signalling, the view members whose
//!    `toBeSignalled` announcement for the round never arrived; for exit,
//!    the view members whose vote is missing. Because every live
//!    participant answers within a latency bound ≪ the timeout, expiry
//!    means those threads are crashed.
//! 3. **Presume-ƒ.** The suspects are removed from the view (epoch + 1).
//!    In resolution, a crash exception ([`ExceptionId::crash`]) is
//!    synthesized on behalf of each silent one — a participant crash is
//!    *just another exception* to be resolved concurrently — and
//!    resolution re-runs over the shrunken view. Signalling and exit
//!    simply re-collect their round over the shrunken view: the dead
//!    peer's announcement/vote is no longer waited for, so survivors
//!    conclude with real view-stamped outcomes instead of absorbing the
//!    crash as an exit-timeout ƒ.
//! 4. **View agreement.** The initiator broadcasts
//!    [`Message::ViewChange`](caa_core::message::Message::ViewChange) with
//!    the `(epoch, removed)` pair to its *pre-removal* view — including
//!    the suspects themselves, so a falsely suspected live thread learns
//!    of its eviction and gives up locally instead of counter-suspecting
//!    the survivors. Receivers merge **set-wise**
//!    (`FrameMembership::adopt_removals`): whatever subset of `removed`
//!    is still live locally is removed at the receiver's own next epoch.
//!    Epoch numbers are thread-local counters; agreement is on the member
//!    *sets*, which concurrent suspicions from different rounds reach
//!    commutatively (the sweep oracle checks that survivors' cumulative
//!    removed sets form a chain under ⊆). A `Commit` also carries the
//!    resolver's cumulative removed set, merged the same way, so a
//!    survivor that receives the commit before a racing `ViewChange`
//!    announcement still stops waiting on the dead.
//!
//! After recovery, the frame's signalling and exit protocols range over
//! the current view: survivors coordinate among themselves and the action
//! can still conclude with any outcome its handlers produce — a crash no
//! longer forces ƒ the way a bare exit timeout does.
//!
//! **Epoch-numbered rejoin.** Views can also grow back. A restarted
//! participant broadcasts
//! [`Message::JoinRequest`](caa_core::message::Message::JoinRequest) to
//! the survivors of its last known view; a survivor *grants* by
//! re-admitting the joiner locally (`FrameMembership::adopt_rejoin`,
//! epoch + 1) and broadcasting
//! [`Message::JoinGrant`](caa_core::message::Message::JoinGrant) — its
//! post-grant epoch, its cumulative removed set *after* re-admission
//! (the joiner is no longer in it), the exit epoch, and the resolved
//! exception if any — to every member of its new view including the
//! joiner. Peers adopt the same rejoin step; the joiner reconstructs its
//! view from scratch with `FrameMembership::sync_grant` and re-enters
//! the action, catching up to the granter's exit epoch. Rejoin epochs are
//! ordinary membership epochs: a re-admitted member can crash again and
//! be removed again.
//!
//! Everything is deterministic: deadlines are virtual-time instants, the
//! suspect set is a pure function of protocol state, and view changes are
//! totally ordered by epoch — the same seed replays the same crashes, the
//! same view sequence and the same byte-identical trace.

use std::sync::Arc;

use caa_core::exception::{Exception, ExceptionId};
use caa_core::ids::ThreadId;
use caa_core::membership::{MembershipView, ViewChangeOutcome};
use caa_core::message::{no_removals, SignalRound};

/// Which bounded protocol round a suspicion fired in.
///
/// Every round follows the same presume-crashed sequence (timeout event →
/// local view change → `ViewChange` broadcast → re-collect over the
/// shrunken view); the round only selects which timeout event is observed
/// and which self-metric counter is bumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SuspicionRound {
    /// The §3.3.2 resolution collection loop timed out.
    Resolution,
    /// A §3.4 signalling exchange timed out.
    Signalling(SignalRound),
    /// The exit-vote collection timed out at the given exit epoch.
    Exit {
        /// The frame's exit epoch when the wait expired.
        epoch: u32,
    },
}

/// Per-frame membership state driven by the recovery driver's failure
/// detector.
#[derive(Debug, Clone)]
pub(crate) struct FrameMembership {
    view: MembershipView,
    /// The cumulative removed set as a shared slice, cached per epoch:
    /// stamping `N − 1` outgoing `Commit`s clones one `Arc` per recipient
    /// instead of materialising the set per message (and the crash-free
    /// case reuses the global empty set, allocating nothing at all).
    removed_cache: Option<(u32, Arc<[ThreadId]>)>,
}

impl FrameMembership {
    /// The initial full view over the action's group.
    pub(crate) fn new(group: &[ThreadId]) -> Self {
        FrameMembership {
            view: MembershipView::new(group),
            removed_cache: None,
        }
    }

    /// The live members, sorted ascending.
    pub(crate) fn members(&self) -> &[ThreadId] {
        self.view.members()
    }

    /// The current membership epoch.
    pub(crate) fn epoch(&self) -> u32 {
        self.view.epoch()
    }

    /// Every thread removed so far, ascending.
    #[cfg(test)]
    pub(crate) fn removed(&self) -> &[ThreadId] {
        self.view.removed()
    }

    /// [`FrameMembership::removed`] as a shared slice for message
    /// stamping — cached per epoch, so broadcast fan-out clones an `Arc`
    /// instead of copying the set per recipient.
    pub(crate) fn removed_shared(&mut self) -> Arc<[ThreadId]> {
        match &self.removed_cache {
            Some((epoch, set)) if *epoch == self.view.epoch() => Arc::clone(set),
            _ => {
                let set: Arc<[ThreadId]> = if self.view.removed().is_empty() {
                    no_removals()
                } else {
                    Arc::from(self.view.removed())
                };
                self.removed_cache = Some((self.view.epoch(), Arc::clone(&set)));
                set
            }
        }
    }

    /// Initiates a local view change after a bounded wait expired:
    /// removes `suspects` and bumps the epoch. Returns the new epoch.
    pub(crate) fn initiate(&mut self, suspects: &[ThreadId]) -> Result<u32, String> {
        let epoch = self.view.epoch() + 1;
        match self.view.apply(epoch, suspects) {
            ViewChangeOutcome::Applied { .. } => Ok(epoch),
            ViewChangeOutcome::Duplicate => Err("local view change applied nothing".into()),
            ViewChangeOutcome::Conflict { reason } => Err(reason),
        }
    }

    /// Merges a peer's removal announcement set-wise: removes whatever
    /// subset of `removed` is still live here, at this view's own next
    /// epoch. Used for both a `ViewChange`'s step set and a `Commit`'s
    /// cumulative set — under set-based agreement the distinction
    /// disappears, and concurrent suspicions from different rounds merge
    /// commutatively (no conflict is possible: already-removed threads
    /// are simply skipped).
    ///
    /// Returns the `(new_epoch, actually_removed)` pair when the view
    /// shrank, or `None` when the announcement carried nothing new.
    pub(crate) fn adopt_removals(&mut self, removed: &[ThreadId]) -> Option<(u32, Vec<ThreadId>)> {
        let fresh: Vec<ThreadId> = removed
            .iter()
            .copied()
            .filter(|t| self.view.contains(*t))
            .collect();
        if fresh.is_empty() {
            return None;
        }
        let epoch = self.view.epoch() + 1;
        match self.view.apply(epoch, &fresh) {
            ViewChangeOutcome::Applied { removed } => Some((epoch, removed)),
            // Unreachable by construction: `fresh` is a non-empty subset
            // of the live members and `epoch` is exactly current + 1.
            _ => None,
        }
    }

    /// Merges a rejoin: re-admits `thread` at this view's own next epoch.
    /// Used by the granting survivor (locally, before broadcasting the
    /// `JoinGrant`) and by every peer applying the broadcast. Returns the
    /// new epoch, or `None` when the announcement is stale — `thread` is
    /// already a live member here (duplicate grant) or was never removed.
    pub(crate) fn adopt_rejoin(&mut self, thread: ThreadId) -> Option<u32> {
        if self.view.contains(thread) || !self.view.removed().contains(&thread) {
            return None;
        }
        let epoch = self.view.epoch() + 1;
        match self.view.rejoin(epoch, thread) {
            ViewChangeOutcome::Applied { .. } => Some(epoch),
            _ => None,
        }
    }

    /// Reconstructs the *joiner's* view from a `JoinGrant`: starts from
    /// the original full group and fast-forwards to the granter's
    /// post-grant view (`epoch`, cumulative `removed` — which no longer
    /// contains the joiner). The never-suspected case (the granter never
    /// removed the joiner, so the grant is `(0, [])` relative to a full
    /// view) falls out uniformly. Fails if the grant still lists `me` as
    /// removed — a granter must re-admit before granting.
    pub(crate) fn sync_grant(
        group: &[ThreadId],
        epoch: u32,
        removed: &[ThreadId],
        me: ThreadId,
    ) -> Result<Self, String> {
        let mut m = FrameMembership::new(group);
        match m.view.sync_to(epoch, removed) {
            ViewChangeOutcome::Applied { .. } | ViewChangeOutcome::Duplicate => {}
            ViewChangeOutcome::Conflict { reason } => return Err(reason),
        }
        if !m.view.contains(me) {
            return Err(format!(
                "join grant (epoch {epoch}, removed {removed:?}) does not re-admit {me}"
            ));
        }
        Ok(m)
    }
}

/// The crash exception synthesized on behalf of each presumed-crashed
/// thread (presume-ƒ): it enters the resolver's entry list as if the dead
/// peer had raised it, so the crash is resolved — and handled — like any
/// other concurrent exception.
pub(crate) fn synthesize_crashes(removed: &[ThreadId]) -> Vec<Exception> {
    removed
        .iter()
        .map(|&t| {
            Exception::new(ExceptionId::crash())
                .with_origin(t)
                .with_detail("presumed crashed: bounded resolution wait expired")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId::new(n)
    }

    #[test]
    fn initiate_bumps_epoch_and_removes_suspects() {
        let mut m = FrameMembership::new(&[t(0), t(1), t(2)]);
        assert_eq!(m.epoch(), 0);
        let epoch = m.initiate(&[t(1)]).expect("valid suspects");
        assert_eq!(epoch, 1);
        assert_eq!(m.members(), &[t(0), t(2)]);
        assert_eq!(m.removed(), &[t(1)]);
        // Removing a thread that is already gone is a local logic error.
        assert!(m.initiate(&[t(1)]).is_err());
    }

    #[test]
    fn adopt_removals_merges_set_wise() {
        let mut m = FrameMembership::new(&[t(0), t(1), t(2), t(3)]);
        // A step announcement merges at our own next epoch.
        assert_eq!(m.adopt_removals(&[t(2)]), Some((1, vec![t(2)])));
        // Re-announcing the same removal carries nothing new.
        assert_eq!(m.adopt_removals(&[t(2)]), None);
        // A cumulative set from a peer that also removed T1 merges the
        // fresh subset only — no conflict is possible.
        assert_eq!(m.adopt_removals(&[t(1), t(2)]), Some((2, vec![t(1)])));
        assert_eq!(m.members(), &[t(0), t(3)]);
        assert_eq!(m.removed(), &[t(1), t(2)]);
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn adopt_rejoin_readmits_and_rejects_stale() {
        let mut m = FrameMembership::new(&[t(0), t(1), t(2)]);
        m.initiate(&[t(1)]).unwrap();
        assert_eq!(m.adopt_rejoin(t(1)), Some(2));
        assert_eq!(m.members(), &[t(0), t(1), t(2)]);
        // A duplicate grant broadcast is stale: T1 is already live.
        assert_eq!(m.adopt_rejoin(t(1)), None);
        // A thread that was never a member cannot rejoin.
        assert_eq!(m.adopt_rejoin(t(9)), None);
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn rejoin_round_trips_between_granter_and_joiner() {
        // T1 crashed (epoch 1); a survivor grants its rejoin at epoch 2.
        let group = [t(0), t(1), t(2)];
        let mut granter = FrameMembership::new(&group);
        granter.initiate(&[t(1)]).unwrap();
        let grant_epoch = granter.adopt_rejoin(t(1)).expect("removed member rejoins");
        assert_eq!(grant_epoch, 2);
        assert_eq!(granter.members(), &group);
        // The grant carries the post-grant epoch and post-readmission
        // cumulative removed set; the joiner reconstructs the same
        // member set from it (epoch numbering is thread-local).
        let removed_after: Vec<_> = granter.removed().to_vec();
        let joiner = FrameMembership::sync_grant(&group, grant_epoch, &removed_after, t(1))
            .expect("grant reconstructs");
        assert_eq!(joiner.members(), granter.members());
        assert_eq!(joiner.removed(), granter.removed());
    }

    #[test]
    fn sync_grant_handles_never_suspected_joiners() {
        // The granter never removed the joiner (crash before any timeout
        // fired): the grant is the full epoch-0 view and reconstruction
        // is the identity.
        let group = [t(0), t(1)];
        let joiner = FrameMembership::sync_grant(&group, 0, &[], t(1)).expect("identity grant");
        assert_eq!(joiner.members(), &group);
        assert_eq!(joiner.epoch(), 0);
    }

    #[test]
    fn sync_grant_rejects_inconsistent_grants() {
        let group = [t(0), t(1)];
        // A grant that still lists the joiner as removed: the granter
        // must re-admit before granting.
        assert!(FrameMembership::sync_grant(&group, 1, &[t(1)], t(1)).is_err());
        // A grant whose removed set names a thread outside the group.
        assert!(FrameMembership::sync_grant(&group, 1, &[t(9)], t(1)).is_err());
    }

    #[test]
    fn synthesized_crashes_carry_origin_and_crash_id() {
        let crashes = synthesize_crashes(&[t(4), t(7)]);
        assert_eq!(crashes.len(), 2);
        for (e, expect) in crashes.iter().zip([t(4), t(7)]) {
            assert!(e.id().is_crash());
            assert_eq!(e.origin(), Some(expect));
        }
    }
}
