//! The crash-aware membership subsystem: a deterministic,
//! simulation-driven failure detector for coordinated resolution.
//!
//! §3.4 of the paper bounds waits for the signalling algorithm, and the
//! exit protocol reuses the same rule; this module extends it to the one
//! loop that could still block forever on a crashed peer — the resolution
//! collection of §3.3.2. Each action frame carries a `FrameMembership`
//! (crate-internal): the [`MembershipView`] (live members + epoch) this
//! participant holds of the instance. The recovery driver (see
//! [`crate::context`]) runs the detector:
//!
//! 1. **Bounded wait.** When the action declares a
//!    [`resolution timeout`](crate::ActionDefBuilder::resolution_timeout),
//!    the collection loop waits on a per-round virtual-time deadline (the
//!    same [`recv_deadline`](caa_simnet::Endpoint::recv_deadline) machinery
//!    the exit protocol uses) instead of blocking unboundedly.
//! 2. **Suspect computation.** On expiry, the resolver state names the
//!    threads this participant is blocked on
//!    ([`ResolverState::waiting_on`](crate::protocol::ResolverState::waiting_on)):
//!    view members with no recorded entry, or an elected resolver whose
//!    `Commit` never came. Because every live participant answers within a
//!    latency bound ≪ the timeout, expiry means those threads are crashed.
//! 3. **Presume-ƒ.** The suspects are removed from the view (epoch + 1), a
//!    crash exception ([`ExceptionId::crash`]) is synthesized on behalf of
//!    each silent one — a participant crash is *just another exception* to
//!    be resolved concurrently — and resolution re-runs over the shrunken
//!    view.
//! 4. **View agreement.** The initiator broadcasts
//!    [`Message::ViewChange`](caa_core::message::Message::ViewChange) with
//!    the `(epoch, removed)` pair; survivors apply the identical change
//!    (or detect that they already did, when several timed out
//!    concurrently — the deterministic deadlines make their suspect sets
//!    equal), so all survivors share one view before any handler starts
//!    and therefore elect the same resolver and commit to the same
//!    resolving exception. A `Commit` also carries the resolver's
//!    `(epoch, removed)` pair, so a survivor that receives the commit
//!    before a racing `ViewChange` announcement still adopts the shrunken
//!    view — its signalling and exit rounds must not wait on the dead.
//!
//! After recovery, the frame's signalling and exit protocols range over
//! the current view: survivors coordinate among themselves and the action
//! can still conclude with any outcome its handlers produce — a crash no
//! longer forces ƒ the way a bare exit timeout does.
//!
//! Everything is deterministic: deadlines are virtual-time instants, the
//! suspect set is a pure function of protocol state, and view changes are
//! totally ordered by epoch — the same seed replays the same crashes, the
//! same view sequence and the same byte-identical trace.

use std::sync::Arc;

use caa_core::exception::{Exception, ExceptionId};
use caa_core::ids::ThreadId;
use caa_core::membership::{MembershipView, ViewChangeOutcome};
use caa_core::message::no_removals;

/// Per-frame membership state driven by the recovery driver's failure
/// detector.
#[derive(Debug, Clone)]
pub(crate) struct FrameMembership {
    view: MembershipView,
    /// The cumulative removed set as a shared slice, cached per epoch:
    /// stamping `N − 1` outgoing `Commit`s clones one `Arc` per recipient
    /// instead of materialising the set per message (and the crash-free
    /// case reuses the global empty set, allocating nothing at all).
    removed_cache: Option<(u32, Arc<[ThreadId]>)>,
}

impl FrameMembership {
    /// The initial full view over the action's group.
    pub(crate) fn new(group: &[ThreadId]) -> Self {
        FrameMembership {
            view: MembershipView::new(group),
            removed_cache: None,
        }
    }

    /// The live members, sorted ascending.
    pub(crate) fn members(&self) -> &[ThreadId] {
        self.view.members()
    }

    /// The current membership epoch.
    pub(crate) fn epoch(&self) -> u32 {
        self.view.epoch()
    }

    /// Every thread removed so far, ascending.
    #[cfg(test)]
    pub(crate) fn removed(&self) -> &[ThreadId] {
        self.view.removed()
    }

    /// [`FrameMembership::removed`] as a shared slice for message
    /// stamping — cached per epoch, so broadcast fan-out clones an `Arc`
    /// instead of copying the set per recipient.
    pub(crate) fn removed_shared(&mut self) -> Arc<[ThreadId]> {
        match &self.removed_cache {
            Some((epoch, set)) if *epoch == self.view.epoch() => Arc::clone(set),
            _ => {
                let set: Arc<[ThreadId]> = if self.view.removed().is_empty() {
                    no_removals()
                } else {
                    Arc::from(self.view.removed())
                };
                self.removed_cache = Some((self.view.epoch(), Arc::clone(&set)));
                set
            }
        }
    }

    /// Initiates a local view change after a bounded wait expired:
    /// removes `suspects` and bumps the epoch. Returns the new epoch.
    pub(crate) fn initiate(&mut self, suspects: &[ThreadId]) -> Result<u32, String> {
        let epoch = self.view.epoch() + 1;
        match self.view.apply(epoch, suspects) {
            ViewChangeOutcome::Applied { .. } => Ok(epoch),
            ViewChangeOutcome::Duplicate => Err("local view change applied nothing".into()),
            ViewChangeOutcome::Conflict { reason } => Err(reason),
        }
    }

    /// Applies a peer's `ViewChange` announcement: one epoch's step of
    /// removals.
    pub(crate) fn apply_remote(&mut self, epoch: u32, removed: &[ThreadId]) -> ViewChangeOutcome {
        self.view.apply(epoch, removed)
    }

    /// Adopts the membership data piggybacked on a resolver's `Commit`:
    /// the resolver's epoch and *cumulative* removed set. This can jump
    /// over announcements still in flight, so a survivor that learns the
    /// resolving exception first still stops waiting on the dead in its
    /// signalling and exit rounds.
    pub(crate) fn sync_commit(&mut self, epoch: u32, removed: &[ThreadId]) -> ViewChangeOutcome {
        self.view.sync_to(epoch, removed)
    }
}

/// The crash exception synthesized on behalf of each presumed-crashed
/// thread (presume-ƒ): it enters the resolver's entry list as if the dead
/// peer had raised it, so the crash is resolved — and handled — like any
/// other concurrent exception.
pub(crate) fn synthesize_crashes(removed: &[ThreadId]) -> Vec<Exception> {
    removed
        .iter()
        .map(|&t| {
            Exception::new(ExceptionId::crash())
                .with_origin(t)
                .with_detail("presumed crashed: bounded resolution wait expired")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId::new(n)
    }

    #[test]
    fn initiate_bumps_epoch_and_removes_suspects() {
        let mut m = FrameMembership::new(&[t(0), t(1), t(2)]);
        assert_eq!(m.epoch(), 0);
        let epoch = m.initiate(&[t(1)]).expect("valid suspects");
        assert_eq!(epoch, 1);
        assert_eq!(m.members(), &[t(0), t(2)]);
        assert_eq!(m.removed(), &[t(1)]);
        // Removing a thread that is already gone is a local logic error.
        assert!(m.initiate(&[t(1)]).is_err());
    }

    #[test]
    fn apply_remote_accepts_next_epoch_and_duplicates() {
        let mut m = FrameMembership::new(&[t(0), t(1), t(2)]);
        assert!(matches!(
            m.apply_remote(1, &[t(2)]),
            ViewChangeOutcome::Applied { .. }
        ));
        assert!(matches!(
            m.apply_remote(1, &[t(2)]),
            ViewChangeOutcome::Duplicate
        ));
        assert!(matches!(
            m.apply_remote(1, &[t(0)]),
            ViewChangeOutcome::Conflict { .. }
        ));
    }

    #[test]
    fn sync_commit_jumps_to_a_commits_cumulative_view() {
        // A commit carrying (epoch 2, removed {1, 2}) reaches a survivor
        // still at epoch 0: it lands on the resolver's exact view.
        let mut m = FrameMembership::new(&[t(0), t(1), t(2), t(3)]);
        let outcome = m.sync_commit(2, &[t(1), t(2)]);
        assert!(
            matches!(outcome, ViewChangeOutcome::Applied { .. }),
            "{outcome:?}"
        );
        assert_eq!(m.members(), &[t(0), t(3)]);
        assert_eq!(m.epoch(), 2);
        // A crash-free commit (epoch 0, nothing removed) is a no-op.
        let mut m = FrameMembership::new(&[t(0), t(1)]);
        assert!(matches!(
            m.sync_commit(0, &[]),
            ViewChangeOutcome::Duplicate
        ));
        // A jump that contradicts local history conflicts.
        let mut m = FrameMembership::new(&[t(0), t(1), t(2)]);
        m.initiate(&[t(1)]).unwrap();
        assert!(matches!(
            m.sync_commit(3, &[t(0)]),
            ViewChangeOutcome::Conflict { .. }
        ));
    }

    #[test]
    fn synthesized_crashes_carry_origin_and_crash_id() {
        let crashes = synthesize_crashes(&[t(4), t(7)]);
        assert_eq!(crashes.len(), 2);
        for (e, expect) in crashes.iter().zip([t(4), t(7)]) {
            assert!(e.id().is_crash());
            assert_eq!(e.origin(), Some(expect));
        }
    }
}
