//! Message counters.
//!
//! §3.3.3 and §3.4 state exact message-complexity results — e.g.
//! `(N + 1) × (N − 1)` messages for a single exception with no nesting —
//! which the benchmark harness verifies empirically. The network therefore
//! counts every message by a caller-supplied *class* label (the runtime
//! uses the protocol message kinds; application traffic is counted
//! separately, since the paper's results exclude it).

use std::collections::BTreeMap;

/// Classification hook: the network asks each payload for its class label.
///
/// Implement this for your message type so [`NetStats`] can attribute
/// counts. Labels should be `'static` literals (e.g. `"Exception"`).
pub trait Classify {
    /// The class label under which this message is counted.
    fn class(&self) -> &'static str;

    /// An optional correlation key reported to network taps
    /// ([`crate::NetTap`]); defaults to 0. The CA-action runtime reports
    /// the action-instance serial so traces can attribute protocol traffic
    /// to action instances.
    fn correlation(&self) -> u64 {
        0
    }
}

impl Classify for caa_core::Message {
    /// Protocol messages are counted under their [`caa_core::MessageKind`]
    /// names, so the §3.3.3 / §3.4 complexity results can be read straight
    /// off the counters.
    fn class(&self) -> &'static str {
        match self.kind() {
            caa_core::MessageKind::Exception => "Exception",
            caa_core::MessageKind::Suspended => "Suspended",
            caa_core::MessageKind::Commit => "Commit",
            caa_core::MessageKind::Resolve => "Resolve",
            caa_core::MessageKind::ViewChange => "ViewChange",
            caa_core::MessageKind::JoinRequest => "JoinRequest",
            caa_core::MessageKind::JoinGrant => "JoinGrant",
            caa_core::MessageKind::ToBeSignalled => "toBeSignalled",
            caa_core::MessageKind::ExitVote => "ExitVote",
            caa_core::MessageKind::App => "App",
        }
    }

    /// Protocol messages correlate by the action instance they belong to.
    fn correlation(&self) -> u64 {
        self.action().serial()
    }
}

/// Snapshot of per-class message counters.
///
/// # Examples
///
/// ```
/// use caa_simnet::NetStats;
///
/// let mut stats = NetStats::default();
/// stats.record_sent("Exception");
/// stats.record_sent("Exception");
/// stats.record_dropped("Commit");
/// assert_eq!(stats.sent("Exception"), 2);
/// assert_eq!(stats.dropped("Commit"), 1);
/// assert_eq!(stats.total_sent(), 2);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct NetStats {
    sent: BTreeMap<&'static str, u64>,
    dropped: BTreeMap<&'static str, u64>,
    corrupted: BTreeMap<&'static str, u64>,
    retransmissions: u64,
}

impl NetStats {
    /// Records a successfully enqueued message of the given class.
    pub fn record_sent(&mut self, class: &'static str) {
        *self.sent.entry(class).or_insert(0) += 1;
    }

    /// Records a message lost by fault injection.
    pub fn record_dropped(&mut self, class: &'static str) {
        *self.dropped.entry(class).or_insert(0) += 1;
    }

    /// Records a message corrupted by fault injection.
    pub fn record_corrupted(&mut self, class: &'static str) {
        *self.corrupted.entry(class).or_insert(0) += 1;
    }

    /// Records `n` ack-timeout retransmissions.
    pub fn record_retransmissions(&mut self, n: u64) {
        self.retransmissions += n;
    }

    /// Messages of `class` sent (including later-corrupted ones, excluding
    /// dropped ones).
    #[must_use]
    pub fn sent(&self, class: &str) -> u64 {
        self.sent.get(class).copied().unwrap_or(0)
    }

    /// Messages of `class` lost by fault injection.
    #[must_use]
    pub fn dropped(&self, class: &str) -> u64 {
        self.dropped.get(class).copied().unwrap_or(0)
    }

    /// Messages of `class` corrupted by fault injection.
    #[must_use]
    pub fn corrupted(&self, class: &str) -> u64 {
        self.corrupted.get(class).copied().unwrap_or(0)
    }

    /// Total messages sent across all classes.
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total ack-timeout retransmissions across all messages.
    #[must_use]
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Sum of sent counts over the classes for which `filter` returns true.
    ///
    /// The §3.3.3 results count only `Exception`, `Suspended` and `Commit`
    /// messages; this is the hook the harness uses to apply that filter.
    #[must_use]
    pub fn sent_matching(&self, mut filter: impl FnMut(&str) -> bool) -> u64 {
        self.sent
            .iter()
            .filter(|(class, _)| filter(class))
            .map(|(_, n)| n)
            .sum()
    }

    /// Iterates `(class, sent-count)` pairs in lexicographic class order.
    pub fn iter_sent(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.sent.iter().map(|(&c, &n)| (c, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_class() {
        let mut s = NetStats::default();
        for _ in 0..3 {
            s.record_sent("Exception");
        }
        s.record_sent("Commit");
        s.record_dropped("Suspended");
        s.record_corrupted("Commit");
        s.record_retransmissions(2);
        assert_eq!(s.sent("Exception"), 3);
        assert_eq!(s.sent("Commit"), 1);
        assert_eq!(s.sent("Suspended"), 0);
        assert_eq!(s.dropped("Suspended"), 1);
        assert_eq!(s.corrupted("Commit"), 1);
        assert_eq!(s.total_sent(), 4);
        assert_eq!(s.retransmissions(), 2);
    }

    #[test]
    fn sent_matching_filters_classes() {
        let mut s = NetStats::default();
        s.record_sent("Exception");
        s.record_sent("Suspended");
        s.record_sent("App");
        let control = s.sent_matching(|c| c != "App");
        assert_eq!(control, 2);
    }

    #[test]
    fn iter_sent_is_sorted() {
        let mut s = NetStats::default();
        s.record_sent("b");
        s.record_sent("a");
        let classes: Vec<_> = s.iter_sent().map(|(c, _)| c).collect();
        assert_eq!(classes, vec!["a", "b"]);
    }

    #[test]
    fn unknown_classes_read_zero() {
        let s = NetStats::default();
        assert_eq!(s.sent("nothing"), 0);
        assert_eq!(s.total_sent(), 0);
    }
}
