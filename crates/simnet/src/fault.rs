//! Fault injection for the simulated network.
//!
//! §3.4 extends the signalling algorithm to node/link faults: "the corrupted
//! message or lost message can be simply treated as a failure exception".
//! A [`FaultPlan`] describes which messages to lose or corrupt so tests can
//! drive exactly that path.
//!
//! **Determinism caveat:** a rule's `skip`/`count` budget is consumed in
//! message *arrival* order at the injector. Messages from one sender arrive
//! in that sender's program order, which virtual time makes deterministic —
//! but two different partitions sending matching messages at the same
//! virtual instant race for the budget in wall-clock order. Experiments
//! that must replay identically from a seed (e.g. `caa-harness` scenarios)
//! should therefore pin each rule to a single sender with
//! [`FaultSpec::from`] or [`FaultSpec::link`].

use caa_core::ids::PartitionId;

/// Matcher for messages a fault should affect.
///
/// All criteria are optional; an empty spec matches every message. `skip`
/// lets the fault begin after some matching traffic; `count` bounds how many
/// messages are affected.
///
/// # Examples
///
/// ```
/// use caa_simnet::FaultSpec;
/// use caa_core::ids::PartitionId;
///
/// // Lose the first Commit sent from node 0 to node 2.
/// let spec = FaultSpec::link(PartitionId::new(0), PartitionId::new(2))
///     .class("Commit")
///     .count(1);
/// assert_eq!(spec.remaining(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSpec {
    src: Option<PartitionId>,
    dst: Option<PartitionId>,
    class: Option<&'static str>,
    skip: u64,
    count: u64,
}

impl FaultSpec {
    /// Matches every message (until narrowed).
    #[must_use]
    pub fn any() -> Self {
        FaultSpec {
            src: None,
            dst: None,
            class: None,
            skip: 0,
            count: u64::MAX,
        }
    }

    /// Matches messages on the directed link `src → dst`.
    #[must_use]
    pub fn link(src: PartitionId, dst: PartitionId) -> Self {
        FaultSpec {
            src: Some(src),
            dst: Some(dst),
            ..FaultSpec::any()
        }
    }

    /// Matches messages sent by `src` to anyone.
    #[must_use]
    pub fn from(src: PartitionId) -> Self {
        FaultSpec {
            src: Some(src),
            ..FaultSpec::any()
        }
    }

    /// Matches messages delivered to `dst` from anyone.
    #[must_use]
    pub fn to(dst: PartitionId) -> Self {
        FaultSpec {
            dst: Some(dst),
            ..FaultSpec::any()
        }
    }

    /// Restricts the match to one message class (see
    /// [`Classify`](crate::Classify)).
    #[must_use]
    pub fn class(mut self, class: &'static str) -> Self {
        self.class = Some(class);
        self
    }

    /// Skips the first `n` matching messages before taking effect.
    #[must_use]
    pub fn skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Affects at most `n` matching messages (default: unbounded).
    #[must_use]
    pub fn count(mut self, n: u64) -> Self {
        self.count = n;
        self
    }

    /// How many more messages this spec will affect.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.count
    }

    fn matches(&self, src: PartitionId, dst: PartitionId, class: &'static str) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && self.class.is_none_or(|c| c == class)
    }

    /// Consumes one match: returns true if the fault fires for this message.
    fn fire(&mut self, src: PartitionId, dst: PartitionId, class: &'static str) -> bool {
        if self.count == 0 || !self.matches(src, dst, class) {
            return false;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return false;
        }
        self.count -= 1;
        true
    }
}

/// A schedule of message losses and corruptions applied by the network.
///
/// # Examples
///
/// ```
/// use caa_simnet::{FaultPlan, FaultSpec};
/// use caa_core::ids::PartitionId;
///
/// let plan = FaultPlan::new()
///     .lose(FaultSpec::from(PartitionId::new(1)).count(1))
///     .corrupt(FaultSpec::any().class("toBeSignalled").count(2));
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    losses: Vec<FaultSpec>,
    corruptions: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a message-loss rule.
    #[must_use]
    pub fn lose(mut self, spec: FaultSpec) -> Self {
        self.losses.push(spec);
        self
    }

    /// Adds a message-corruption rule.
    #[must_use]
    pub fn corrupt(mut self, spec: FaultSpec) -> Self {
        self.corruptions.push(spec);
        self
    }

    /// Whether the plan contains any rule.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.losses.is_empty() && self.corruptions.is_empty()
    }

    /// Decides whether the given message is lost. Mutates rule budgets.
    pub(crate) fn should_lose(
        &mut self,
        src: PartitionId,
        dst: PartitionId,
        class: &'static str,
    ) -> bool {
        self.losses.iter_mut().any(|r| r.fire(src, dst, class))
    }

    /// Decides whether the given message is corrupted. Mutates rule budgets.
    pub(crate) fn should_corrupt(
        &mut self,
        src: PartitionId,
        dst: PartitionId,
        class: &'static str,
    ) -> bool {
        self.corruptions.iter_mut().any(|r| r.fire(src, dst, class))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: PartitionId = PartitionId::new(0);
    const B: PartitionId = PartitionId::new(1);
    const C: PartitionId = PartitionId::new(2);

    #[test]
    fn any_matches_everything_until_budget_exhausted() {
        let mut plan = FaultPlan::new().lose(FaultSpec::any().count(2));
        assert!(plan.should_lose(A, B, "x"));
        assert!(plan.should_lose(B, C, "y"));
        assert!(!plan.should_lose(A, C, "x"));
    }

    #[test]
    fn link_and_class_filters_apply() {
        let mut plan = FaultPlan::new().lose(FaultSpec::link(A, B).class("Commit"));
        assert!(!plan.should_lose(A, C, "Commit"));
        assert!(!plan.should_lose(A, B, "Exception"));
        assert!(plan.should_lose(A, B, "Commit"));
    }

    #[test]
    fn skip_delays_the_fault() {
        let mut plan = FaultPlan::new().lose(FaultSpec::from(A).skip(2).count(1));
        assert!(!plan.should_lose(A, B, "m"));
        assert!(!plan.should_lose(A, B, "m"));
        assert!(plan.should_lose(A, B, "m"));
        assert!(!plan.should_lose(A, B, "m"));
    }

    #[test]
    fn corruption_is_independent_of_loss() {
        let mut plan = FaultPlan::new()
            .lose(FaultSpec::to(B).count(1))
            .corrupt(FaultSpec::to(C).count(1));
        assert!(plan.should_lose(A, B, "m"));
        assert!(!plan.should_corrupt(A, B, "m"));
        assert!(plan.should_corrupt(A, C, "m"));
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.should_lose(A, B, "m"));
        assert!(!plan.should_corrupt(A, B, "m"));
    }
}
