//! Fault injection for the simulated network.
//!
//! §3.4 extends the signalling algorithm to node/link faults: "the corrupted
//! message or lost message can be simply treated as a failure exception".
//! A [`FaultPlan`] describes which messages to lose or corrupt so tests can
//! drive exactly that path.
//!
//! **Determinism:** a rule's `skip`/`count` budget is consumed **per
//! directed link**. Messages on one link arrive at the injector in the
//! sender's program order, which virtual time makes deterministic, and each
//! link draws from its own budget instance — so the set of affected
//! messages is a pure function of per-link sequence numbers, independent of
//! the wall-clock order in which different partitions' same-instant sends
//! reach the injector. Unpinned rules ([`FaultSpec::any`]) therefore replay
//! exactly; `skip(n).count(m)` reads as "on every matching link, let `n`
//! matching messages through, then affect the next `m`".

use std::collections::HashMap;

use caa_core::ids::PartitionId;

/// Remaining skip/count budget of one rule on one directed link.
#[derive(Debug, Clone, Copy)]
struct LinkBudget {
    skip: u64,
    count: u64,
}

/// Matcher for messages a fault should affect.
///
/// All criteria are optional; an empty spec matches every message. `skip`
/// lets the fault begin after some matching traffic; `count` bounds how many
/// messages are affected. Budgets are instantiated **per directed link**
/// (see the module docs), which keeps unpinned rules deterministic.
///
/// # Examples
///
/// ```
/// use caa_simnet::FaultSpec;
/// use caa_core::ids::PartitionId;
///
/// // Lose the first Commit sent from node 0 to node 2.
/// let spec = FaultSpec::link(PartitionId::new(0), PartitionId::new(2))
///     .class("Commit")
///     .count(1);
/// assert_eq!(spec.per_link_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSpec {
    src: Option<PartitionId>,
    dst: Option<PartitionId>,
    class: Option<&'static str>,
    skip: u64,
    count: u64,
    /// Live budget per directed link, lazily instantiated from
    /// `skip`/`count` on the link's first matching message.
    budgets: HashMap<(u32, u32), LinkBudget>,
}

impl FaultSpec {
    /// Matches every message (until narrowed).
    #[must_use]
    pub fn any() -> Self {
        FaultSpec {
            src: None,
            dst: None,
            class: None,
            skip: 0,
            count: u64::MAX,
            budgets: HashMap::new(),
        }
    }

    /// Matches messages on the directed link `src → dst`.
    #[must_use]
    pub fn link(src: PartitionId, dst: PartitionId) -> Self {
        FaultSpec {
            src: Some(src),
            dst: Some(dst),
            ..FaultSpec::any()
        }
    }

    /// Matches messages sent by `src` to anyone.
    #[must_use]
    pub fn from(src: PartitionId) -> Self {
        FaultSpec {
            src: Some(src),
            ..FaultSpec::any()
        }
    }

    /// Matches messages delivered to `dst` from anyone.
    #[must_use]
    pub fn to(dst: PartitionId) -> Self {
        FaultSpec {
            dst: Some(dst),
            ..FaultSpec::any()
        }
    }

    /// Restricts the match to one message class (see
    /// [`Classify`](crate::Classify)).
    #[must_use]
    pub fn class(mut self, class: &'static str) -> Self {
        self.class = Some(class);
        self
    }

    /// Skips the first `n` matching messages **on each link** before taking
    /// effect.
    #[must_use]
    pub fn skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Affects at most `n` matching messages **per link** (default:
    /// unbounded).
    #[must_use]
    pub fn count(mut self, n: u64) -> Self {
        self.count = n;
        self
    }

    /// The configured per-link `count`: how many matching messages this
    /// spec affects on each link it touches. (This is static
    /// configuration, not live budget — budgets are tracked per link once
    /// traffic flows.)
    #[must_use]
    pub fn per_link_count(&self) -> u64 {
        self.count
    }

    fn matches(&self, src: PartitionId, dst: PartitionId, class: &'static str) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && self.class.is_none_or(|c| c == class)
    }

    /// Consumes one match from the link's budget: returns true if the fault
    /// fires for this message.
    fn fire(&mut self, src: PartitionId, dst: PartitionId, class: &'static str) -> bool {
        if self.count == 0 || !self.matches(src, dst, class) {
            return false;
        }
        let budget = self
            .budgets
            .entry((src.as_u32(), dst.as_u32()))
            .or_insert(LinkBudget {
                skip: self.skip,
                count: self.count,
            });
        if budget.skip > 0 {
            budget.skip -= 1;
            return false;
        }
        if budget.count == 0 {
            return false;
        }
        budget.count -= 1;
        true
    }
}

/// A schedule of message losses and corruptions applied by the network.
///
/// # Examples
///
/// ```
/// use caa_simnet::{FaultPlan, FaultSpec};
/// use caa_core::ids::PartitionId;
///
/// let plan = FaultPlan::new()
///     .lose(FaultSpec::from(PartitionId::new(1)).count(1))
///     .corrupt(FaultSpec::any().class("toBeSignalled").count(2));
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    losses: Vec<FaultSpec>,
    corruptions: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a message-loss rule.
    #[must_use]
    pub fn lose(mut self, spec: FaultSpec) -> Self {
        self.losses.push(spec);
        self
    }

    /// Adds a message-corruption rule.
    #[must_use]
    pub fn corrupt(mut self, spec: FaultSpec) -> Self {
        self.corruptions.push(spec);
        self
    }

    /// Whether the plan contains any rule.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.losses.is_empty() && self.corruptions.is_empty()
    }

    /// Decides whether the given message is lost. Mutates rule budgets.
    pub(crate) fn should_lose(
        &mut self,
        src: PartitionId,
        dst: PartitionId,
        class: &'static str,
    ) -> bool {
        self.losses.iter_mut().any(|r| r.fire(src, dst, class))
    }

    /// Decides whether the given message is corrupted. Mutates rule budgets.
    pub(crate) fn should_corrupt(
        &mut self,
        src: PartitionId,
        dst: PartitionId,
        class: &'static str,
    ) -> bool {
        self.corruptions.iter_mut().any(|r| r.fire(src, dst, class))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: PartitionId = PartitionId::new(0);
    const B: PartitionId = PartitionId::new(1);
    const C: PartitionId = PartitionId::new(2);

    #[test]
    fn any_budget_is_per_link() {
        // `count(1)` on an unpinned rule: one message per matching link.
        let mut plan = FaultPlan::new().lose(FaultSpec::any().count(1));
        assert!(plan.should_lose(A, B, "x"));
        assert!(plan.should_lose(B, C, "y"), "fresh link, fresh budget");
        assert!(!plan.should_lose(A, B, "x"), "A→B budget exhausted");
        assert!(plan.should_lose(A, C, "x"), "fresh link, fresh budget");
    }

    #[test]
    fn per_link_budgets_are_order_independent() {
        // The same traffic in two different cross-link interleavings fires
        // on the same (link, per-link index) pairs — the determinism the
        // harness's replay oracle relies on.
        let traffic_a = [(A, B), (B, C), (A, B), (B, C)];
        let traffic_b = [(B, C), (A, B), (B, C), (A, B)];
        let fire = |traffic: &[(PartitionId, PartitionId)]| -> Vec<(u32, u32)> {
            let mut plan = FaultPlan::new().lose(FaultSpec::any().skip(1).count(1));
            traffic
                .iter()
                .filter(|(s, d)| plan.should_lose(*s, *d, "m"))
                .map(|(s, d)| (s.as_u32(), d.as_u32()))
                .collect()
        };
        let mut a = fire(&traffic_a);
        let mut b = fire(&traffic_b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "affected set must not depend on interleaving");
        assert_eq!(a, vec![(0, 1), (1, 2)], "second message of each link");
    }

    #[test]
    fn link_and_class_filters_apply() {
        let mut plan = FaultPlan::new().lose(FaultSpec::link(A, B).class("Commit"));
        assert!(!plan.should_lose(A, C, "Commit"));
        assert!(!plan.should_lose(A, B, "Exception"));
        assert!(plan.should_lose(A, B, "Commit"));
    }

    #[test]
    fn skip_delays_the_fault_per_link() {
        let mut plan = FaultPlan::new().lose(FaultSpec::from(A).skip(2).count(1));
        assert!(!plan.should_lose(A, B, "m"));
        assert!(!plan.should_lose(A, B, "m"));
        assert!(plan.should_lose(A, B, "m"));
        assert!(!plan.should_lose(A, B, "m"));
        // The A→C link has its own skip/count budget.
        assert!(!plan.should_lose(A, C, "m"));
        assert!(!plan.should_lose(A, C, "m"));
        assert!(plan.should_lose(A, C, "m"));
    }

    #[test]
    fn corruption_is_independent_of_loss() {
        let mut plan = FaultPlan::new()
            .lose(FaultSpec::to(B).count(1))
            .corrupt(FaultSpec::to(C).count(1));
        assert!(plan.should_lose(A, B, "m"));
        assert!(!plan.should_corrupt(A, B, "m"));
        assert!(plan.should_corrupt(A, C, "m"));
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.should_lose(A, B, "m"));
        assert!(!plan.should_corrupt(A, B, "m"));
    }

    #[test]
    fn zero_count_never_fires() {
        let mut plan = FaultPlan::new().lose(FaultSpec::any().count(0));
        assert!(!plan.should_lose(A, B, "m"));
    }
}
