//! Virtual-time scheduler and simulated FIFO message-passing network — the
//! substrate beneath the CA-action runtime (reproducing §5.1 of Xu,
//! Romanovsky & Randell, ICDCS 1998).
//!
//! The paper's prototype ran on distributed Ada 95 partitions connected by
//! "a simple, and hence portable, subsystem for message passing" with
//! per-receiver cyclic buffers. This crate provides the same contract for
//! in-process reproduction:
//!
//! * **Reliable FIFO links** (the algorithm's Assumptions 1–2), with
//!   optional [`FaultPlan`] loss/corruption injection for the §3.4
//!   failure-exception extension;
//! * **Deterministic latencies** via [`LatencyModel`] — the paper's `Tmmax`
//!   parameter — plus the acknowledgment-timeout retransmission model that
//!   reproduces the >1 s knee of Figure 10;
//! * **Virtual time** ([`ClockMode::Virtual`]): endpoints are OS threads,
//!   but time is simulated and advances only when all of them are blocked,
//!   so a 260-virtual-second experiment finishes in milliseconds and a
//!   global deadlock is *detected and reported* rather than hanging the
//!   test suite (the property Theorem 1 proves the protocols never
//!   exhibit);
//! * **Message counters** ([`NetStats`]) for verifying the paper's
//!   message-complexity results empirically.
//!
//! # Determinism
//!
//! Given a seed and a deterministic application, a virtual-time run is
//! bit-reproducible: latencies are a pure hash of
//! `(seed, src, dst, link sequence)`, per-link FIFO nudges resolve ties,
//! and fault budgets are consumed **per directed link** as a pure
//! function of per-link sequence numbers — so even unpinned
//! ([`FaultSpec::any`]) loss/corruption rules affect the identical
//! messages on every replay. The only nondeterminism OS scheduling can
//! introduce is *wall-clock* interleaving of same-instant events, which
//! never feeds back into virtual time.
//!
//! # Targeted wake-ups
//!
//! Scheduling is wake-targeted, not broadcast: every endpoint parks on
//! its own slot, a delivery wakes only its (already-deliverable)
//! receiver, and a time advance wakes only the endpoints whose wake-up
//! point was reached — the unique next runners instead of the herd. For
//! wait conditions the network cannot see (e.g. the runtime's
//! shared-object arbitration), [`Endpoint::park_wait`] parks a thread
//! with no polling timer at all and [`Network::schedule_wake`] lets
//! whoever *enables* the condition ring that thread's doorbell at a
//! chosen virtual instant — wake-on-release rather than
//! wake-every-quantum. Wake-up routing is pure wall-clock optimisation:
//! it decides how threads sleep, never what they observe, so traces are
//! byte-identical to the broadcast design's.
//!
//! # Examples
//!
//! ```
//! use caa_simnet::{Classify, ClockMode, LatencyModel, NetConfig, Network};
//! use caa_core::time::secs;
//!
//! #[derive(Debug)]
//! struct Hello;
//! impl Classify for Hello {
//!     fn class(&self) -> &'static str { "Hello" }
//! }
//!
//! let net: Network<Hello> = Network::new(NetConfig {
//!     mode: ClockMode::Virtual,
//!     latency: LatencyModel::UniformUpTo(secs(0.2)),
//!     seed: 7,
//!     ..NetConfig::default()
//! });
//! let a = net.endpoint("a");
//! let mut b = net.endpoint("b");
//! let b_id = b.id();
//! a.send(b_id, Hello);
//! let worker = std::thread::spawn(move || b.recv().map(|r| r.delivered_at));
//! a.retire();
//! let delivered_at = worker.join().unwrap().unwrap();
//! assert!(delivered_at.as_secs_f64() <= 0.2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod fault;
mod latency;
mod net;
mod stats;
mod tap;

pub use fault::{FaultPlan, FaultSpec};
pub use latency::{effective_latency, LatencyModel};
pub use net::{
    ClockMode, DeadlockInfo, Endpoint, NetArena, NetConfig, Network, Parked, Received, SchedStats,
    SimError,
};
pub use stats::{Classify, NetStats};
pub use tap::{NetTap, TapEvent};
