//! Network observation hooks.
//!
//! A [`NetTap`] attached to a [`Network`](crate::Network) (via
//! [`NetConfig::tap`](crate::NetConfig)) sees every message the network
//! accepts — including the ones fault injection then loses or corrupts —
//! with deterministic virtual timestamps and per-link sequence numbers.
//! The simulation-testing harness uses this to reconstruct per-action
//! message counts for the paper's §3.3.3 complexity bounds; it is equally
//! useful for ad-hoc wire diagnostics.
//!
//! Taps are invoked from sending threads after the network's internal lock
//! is released: implementations must be `Send + Sync`, should be cheap, and
//! must not call back into the network. Events from different senders
//! interleave in arbitrary wall-clock order; per-link `(src, dst, seq)` is
//! deterministic and totally ordered.

use caa_core::ids::PartitionId;
use caa_core::time::VirtualInstant;

/// One observed network-level message event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapEvent {
    /// The sending partition.
    pub src: PartitionId,
    /// The destination partition.
    pub dst: PartitionId,
    /// The message's class label (see [`Classify`](crate::Classify)).
    pub class: &'static str,
    /// The message's correlation key
    /// ([`Classify::correlation`](crate::Classify::correlation)); the
    /// runtime reports the action-instance serial here.
    pub correlation: u64,
    /// Virtual send time.
    pub at: VirtualInstant,
    /// Scheduled virtual delivery time (meaningful for
    /// [`NetTap::on_sent`]; equals `at` for lost messages).
    pub deliver_at: VirtualInstant,
    /// Per-link FIFO sequence number of this message. Lost messages
    /// consume a sequence slot too, so `(src, dst, seq)` uniquely
    /// identifies every accepted-or-lost message.
    pub seq: u64,
}

/// Receives network-level message events.
pub trait NetTap: Send + Sync {
    /// A message was accepted and scheduled for delivery (possibly with a
    /// corrupted payload — see [`NetTap::on_corrupted`]).
    fn on_sent(&self, event: &TapEvent) {
        let _ = event;
    }

    /// Fault injection lost the message; it will never be delivered.
    fn on_dropped(&self, event: &TapEvent) {
        let _ = event;
    }

    /// Fault injection corrupted the message; it will be delivered with no
    /// payload (§3.4 treats this as the failure exception). Follows the
    /// corresponding [`NetTap::on_sent`].
    fn on_corrupted(&self, event: &TapEvent) {
        let _ = event;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sink;
    impl NetTap for Sink {}

    #[test]
    fn default_methods_are_noops() {
        let e = TapEvent {
            src: PartitionId::new(0),
            dst: PartitionId::new(1),
            class: "Msg",
            correlation: 7,
            at: VirtualInstant::EPOCH,
            deliver_at: VirtualInstant::EPOCH,
            seq: 0,
        };
        Sink.on_sent(&e);
        Sink.on_dropped(&e);
        Sink.on_corrupted(&e);
    }
}
