//! The simulated message-passing network and its virtual-time scheduler.
//!
//! The paper's prototype runs each participating thread in its own Ada 95
//! partition on top of "a simple, and hence portable, subsystem for message
//! passing … messages are first kept in the cyclic buffer of the receiver
//! and then processed afterwards" (§5.1). [`Network`] reproduces that
//! substrate in-process:
//!
//! * each participant registers an [`Endpoint`] (one per partition);
//! * sends are asynchronous; per-link delivery is FIFO (Assumption 2) and
//!   reliable unless a [`FaultPlan`] injects losses or corruption;
//! * latencies come from a deterministic [`LatencyModel`], optionally
//!   inflated by the acknowledgment-timeout retransmission model;
//! * in [`ClockMode::Virtual`] the network doubles as a conservative
//!   virtual-time scheduler: virtual time advances only when every live
//!   endpoint is blocked, directly to the earliest wake-up point. A global
//!   block with no wake-up point is a genuine deadlock and is reported as
//!   [`SimError::Deadlock`] to every participant — the property Theorem 1
//!   says the resolution algorithm never triggers.
//!
//! # Locking (the split hot path)
//!
//! State is split so that a send mostly touches the **receiver's shard**:
//!
//! * each endpoint owns a [`Mailbox`] behind its own mutex — the delivery
//!   heap plus a *dense* per-source [`LinkState`] row (the per-pair FIFO
//!   and sequence matrix, distributed across receivers);
//! * a small scheduler mutex guards the clock, the per-endpoint blocked
//!   state/wake-up points, the message counters and deadlock detection —
//!   the only cross-endpoint critical section a send enters;
//! * the virtual clock is mirrored in an atomic so running threads read
//!   `now` without any lock: time only advances when **every** live
//!   endpoint is blocked, so a running sender can never race an advance.
//!
//! Lock order: the scheduler mutex may acquire a mailbox mutex (receive
//! paths evaluate their predicate under both), but no thread ever holds a
//! mailbox mutex while acquiring the scheduler mutex — senders release the
//! shard before entering the scheduler section. Delivery order and
//! time-advance order are byte-identical to the single-lock design: the
//! heap keys, FIFO clamps and wake-up arbitration are unchanged.
//!
//! # Arena reuse
//!
//! Sweep drivers execute thousands of sub-millisecond simulations; a
//! [`NetArena`] recycles the allocation-heavy parts (actor slots with
//! their condvars, mailbox heaps, link rows) from one finished network
//! into the next (see [`Network::new_reusing`] / [`Network::reclaim`]).
//! Reuse is invisible to the simulation: recycled state is fully cleared.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use caa_core::ids::PartitionId;
use caa_core::time::{VirtualDuration, VirtualInstant};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::fault::FaultPlan;
use crate::latency::{effective_latency, LatencyModel};
use crate::stats::{Classify, NetStats};
use crate::tap::{NetTap, TapEvent};

/// How the network experiences time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Virtual time: delays are simulated; wall-clock speed is limited only
    /// by the host CPU. Deterministic given a seed and a deterministic
    /// application.
    #[default]
    Virtual,
    /// Real time: `sleep` and latencies consume wall-clock time. Used by
    /// smoke tests to demonstrate the protocols do not depend on the
    /// virtual-time machinery.
    Real,
}

/// Configuration for a [`Network`].
#[derive(Clone, Default)]
pub struct NetConfig {
    /// Virtual or real time.
    pub mode: ClockMode,
    /// Per-message latency model (the paper's `Tmmax` lives here).
    pub latency: LatencyModel,
    /// Seed for deterministic latency sampling.
    pub seed: u64,
    /// Acknowledgment timeout; latencies beyond it trigger retransmissions
    /// (models the >1 s knee of Figure 10). `None` disables the model.
    pub ack_timeout: Option<VirtualDuration>,
    /// Scheduled message losses and corruptions.
    pub faults: FaultPlan,
    /// Observation hook for sends, losses and corruptions (see
    /// [`NetTap`]).
    pub tap: Option<Arc<dyn NetTap>>,
}

impl fmt::Debug for NetConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetConfig")
            .field("mode", &self.mode)
            .field("latency", &self.latency)
            .field("seed", &self.seed)
            .field("ack_timeout", &self.ack_timeout)
            .field("faults", &self.faults)
            .field("tap", &self.tap.as_ref().map(|_| "<tap>"))
            .finish()
    }
}

/// Why a blocking network operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Every live endpoint is blocked with no pending wake-up: the system
    /// can never make progress again. Only possible in
    /// [`ClockMode::Virtual`].
    Deadlock(DeadlockInfo),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(info) => write!(f, "simulation deadlock: {info}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Diagnostic snapshot taken when a deadlock is detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// Virtual time at which the deadlock occurred.
    pub at: VirtualInstant,
    /// The blocked endpoints: `(name, what they were blocked on)`.
    pub blocked: Vec<(String, &'static str)>,
}

impl fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}, all endpoints blocked:", self.at)?;
        for (name, kind) in &self.blocked {
            write!(f, " {name}({kind})")?;
        }
        Ok(())
    }
}

/// A message as delivered to a receiver.
#[derive(Debug)]
pub struct Received<M> {
    /// The sending partition.
    pub src: PartitionId,
    /// When the message was sent.
    pub sent_at: VirtualInstant,
    /// When the message became available to the receiver.
    pub delivered_at: VirtualInstant,
    /// The payload, or `None` if fault injection corrupted the message in
    /// transit (§3.4 treats corrupted messages as the failure exception).
    pub msg: Option<M>,
}

impl<M> Received<M> {
    /// Whether the message was corrupted in transit.
    #[must_use]
    pub fn is_corrupted(&self) -> bool {
        self.msg.is_none()
    }
}

/// What ended an [`Endpoint::park_wait`].
#[derive(Debug)]
pub enum Parked<M> {
    /// A message became deliverable (always reported before a same-instant
    /// doorbell, so parked waiters drain their inbox first).
    Msg(Received<M>),
    /// The endpoint's doorbell rang: virtual time reached the instant a
    /// peer (or the endpoint itself) scheduled with
    /// [`Network::schedule_wake`] for the current wait epoch
    /// ([`Endpoint::begin_wait`]). The doorbell is consumed.
    Doorbell,
    /// The caller-supplied deadline of [`Endpoint::park_wait_until`] was
    /// reached (with no message and no doorbell due at the same instant).
    /// The doorbell — which belongs to the wait's scheduler, e.g. an
    /// object arbitration — is left untouched.
    Deadline,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Recv,
    Sleep,
    /// [`Endpoint::park_wait`]: blocked until a message is deliverable or
    /// the endpoint's doorbell rings (see [`Network::schedule_wake`]).
    Park,
}

impl BlockKind {
    fn label(self) -> &'static str {
        match self {
            BlockKind::Recv => "recv",
            BlockKind::Sleep => "sleep",
            BlockKind::Park => "park",
        }
    }

    /// Whether an endpoint blocked this way re-evaluates its predicate
    /// when a message becomes deliverable.
    fn receives_messages(self) -> bool {
        matches!(self, BlockKind::Recv | BlockKind::Park)
    }
}

struct ActorSlot {
    name: Arc<str>,
    alive: bool,
    running: bool,
    blocked_on: BlockKind,
    wake_at: Option<VirtualInstant>,
    /// This endpoint's private parking slot. Every blocking wait parks
    /// here, and wake-ups are *targeted*: a delivery notifies only the
    /// receiver, a time advance only the endpoints whose wake-up point was
    /// reached, a doorbell only its owner — never the whole herd.
    cv: Arc<Condvar>,
    /// Pending explicit wake-up, if any ([`Network::schedule_wake`]):
    /// consumed by [`Endpoint::park_wait`] when virtual time reaches it.
    doorbell: Option<VirtualInstant>,
    /// Monotonic counter identifying the endpoint's *current* parked wait
    /// ([`Endpoint::begin_wait`]). [`Network::schedule_wake`] carries the
    /// epoch its computation was based on and is ignored when it does not
    /// match — a scheduler that raced against the end of an earlier wait
    /// (e.g. an object releaser whose winner was cancelled and has since
    /// started waiting elsewhere) cannot plant a stale doorbell into the
    /// new wait.
    wait_epoch: u64,
}

impl ActorSlot {
    fn fresh(name: Arc<str>, cv: Arc<Condvar>) -> ActorSlot {
        ActorSlot {
            name,
            alive: true,
            running: true,
            blocked_on: BlockKind::Recv,
            wake_at: None,
            cv,
            doorbell: None,
            wait_epoch: 0,
        }
    }
}

struct Envelope<M> {
    deliver_at: VirtualInstant,
    src: PartitionId,
    seq: u64,
    sent_at: VirtualInstant,
    msg: Option<M>,
}

impl<M> Envelope<M> {
    fn key(&self) -> (VirtualInstant, u32, u64) {
        (self.deliver_at, self.src.as_u32(), self.seq)
    }
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Envelope<M> {}
impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

#[derive(Default, Clone, Copy)]
struct LinkState {
    seq: u64,
    last_delivery: VirtualInstant,
}

/// One endpoint's receive shard: the delivery heap plus the dense
/// per-source link row (`links_in[src]` is the `(src → this)` cell of the
/// network's link matrix). Guarded by its own mutex so a send contends
/// only with traffic for the *same* receiver.
struct Mailbox<M> {
    alive: bool,
    queue: BinaryHeap<Reverse<Envelope<M>>>,
    links_in: Vec<LinkState>,
}

impl<M> Mailbox<M> {
    fn empty() -> Mailbox<M> {
        Mailbox {
            alive: true,
            queue: BinaryHeap::new(),
            links_in: Vec::new(),
        }
    }

    /// The `(src → this)` link cell, grown on demand (dense by source
    /// index; sources register before they can send, so the row length is
    /// bounded by the endpoint count).
    fn link(&mut self, src: PartitionId) -> &mut LinkState {
        let i = src.index();
        if self.links_in.len() <= i {
            self.links_in.resize(i + 1, LinkState::default());
        }
        &mut self.links_in[i]
    }

    fn pop_ready(&mut self, now: VirtualInstant) -> Option<Received<M>> {
        if self
            .queue
            .peek()
            .is_some_and(|Reverse(env)| env.deliver_at <= now)
        {
            let Reverse(env) = self.queue.pop().expect("peeked");
            Some(Received {
                src: env.src,
                sent_at: env.sent_at,
                delivered_at: env.deliver_at,
                msg: env.msg,
            })
        } else {
            None
        }
    }

    fn head_deliver_at(&self) -> Option<VirtualInstant> {
        self.queue.peek().map(|Reverse(env)| env.deliver_at)
    }

    /// Clears the shard for arena reuse, keeping heap and row capacity.
    fn recycle(&mut self) {
        self.alive = true;
        self.queue.clear();
        self.links_in.clear();
    }
}

/// The scheduler shard: clock, per-endpoint blocked state and wake-up
/// points, counters, deadlock state — the single small cross-endpoint
/// critical section of the hot path.
struct Sched {
    now: VirtualInstant,
    actors: Vec<ActorSlot>,
    stats: NetStats,
    deadlocked: Option<DeadlockInfo>,
    /// Recycled actor slots handed out by [`Network::endpoint`] before any
    /// fresh allocation (see [`NetArena`]).
    spare_slots: Vec<ActorSlot>,
}

struct Shared<M> {
    sched: Mutex<Sched>,
    /// One shard per endpoint, in registration order. Senders take a brief
    /// read lock to fetch the receiver's shard handle; endpoints cache
    /// their own.
    mailboxes: RwLock<Vec<Arc<Mutex<Mailbox<M>>>>>,
    /// Recycled mailbox shards handed out before fresh allocation.
    spare_mailboxes: Mutex<Vec<Arc<Mutex<Mailbox<M>>>>>,
    /// Fault rules live outside the scheduler lock (budgets are per
    /// directed link, so decision order across links is free); the flag
    /// lets the fault-free common case skip the lock entirely.
    faults: Mutex<FaultPlan>,
    has_faults: bool,
    /// Mirror of `Sched::now` in nanoseconds. Running threads read it
    /// without a lock: virtual time only advances when every live endpoint
    /// is blocked, so no running reader can race an advance.
    now_ns: AtomicU64,
    mode: ClockMode,
    latency: LatencyModel,
    seed: u64,
    ack_timeout: Option<VirtualDuration>,
    tap: Option<Arc<dyn NetTap>>,
    start: std::time::Instant,
    /// Condvar park count across all endpoints (see [`SchedStats`]).
    /// Atomic, not under `sched`: wake sites run after dropping the
    /// scheduler lock (senders never hold it while notifying).
    parks: AtomicU64,
    /// Condvar notify count across all wake sites (see [`SchedStats`]).
    wakes: AtomicU64,
}

/// Scheduler self-metrics: condvar handoffs between the simulated
/// threads. One `park` is one OS-level condvar wait (a futex sleep on
/// Linux); one `wake` is one targeted `notify_one` (plus the broadcast on
/// deadlock). These are **wall-clock facts about the host scheduler**, not
/// virtual-time facts about the protocol: identical seeds produce
/// identical traces but may park slightly differently depending on OS
/// interleaving, so report these separately from deterministic metrics
/// and gate them with ceilings, not equalities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Number of condvar waits entered by blocked endpoints.
    pub parks: u64,
    /// Number of condvar notifies issued by wake sites.
    pub wakes: u64,
}

/// Recycled allocations of a finished [`Network`]: actor slots (with their
/// condvar allocations) and mailbox shards (with their heap and link-row
/// capacity). Obtained from [`Network::reclaim`], consumed by
/// [`Network::new_reusing`]. Purely an allocation cache — a network built
/// from an arena is observably identical to a fresh one.
pub struct NetArena<M> {
    slots: Vec<ActorSlot>,
    mailboxes: Vec<Arc<Mutex<Mailbox<M>>>>,
}

impl<M> NetArena<M> {
    /// An empty arena (equivalent to passing `None` to
    /// [`Network::new_reusing`]).
    #[must_use]
    pub fn new() -> NetArena<M> {
        NetArena {
            slots: Vec::new(),
            mailboxes: Vec::new(),
        }
    }

    /// How many endpoint slots the arena currently caches.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len().min(self.mailboxes.len())
    }
}

impl<M> Default for NetArena<M> {
    fn default() -> Self {
        NetArena::new()
    }
}

impl<M> fmt::Debug for NetArena<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetArena")
            .field("slots", &self.slots.len())
            .field("mailboxes", &self.mailboxes.len())
            .finish()
    }
}

/// The simulated network (and, in virtual mode, the time scheduler).
///
/// Cheap to clone; all clones share state.
///
/// # Examples
///
/// ```
/// use caa_simnet::{Network, NetConfig, Classify};
/// use caa_core::time::secs;
///
/// #[derive(Debug)]
/// struct Ping(u32);
/// impl Classify for Ping {
///     fn class(&self) -> &'static str { "Ping" }
/// }
///
/// let net: Network<Ping> = Network::new(NetConfig::default());
/// let a = net.endpoint("a");
/// let mut b = net.endpoint("b");
/// let b_id = b.id();
///
/// let handle = std::thread::spawn(move || {
///     let got = b.recv().expect("no deadlock");
///     got.msg.expect("not corrupted").0
/// });
/// a.send(b_id, Ping(7));
/// a.retire();
/// assert_eq!(handle.join().unwrap(), 7);
/// # assert_eq!(net.stats().sent("Ping"), 1);
/// ```
pub struct Network<M> {
    shared: Arc<Shared<M>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sched = self.shared.sched.lock();
        f.debug_struct("Network")
            .field("mode", &self.shared.mode)
            .field("now", &sched.now)
            .field("endpoints", &sched.actors.len())
            .finish()
    }
}

impl<M: Send + Classify> Network<M> {
    /// Creates a network with the given configuration.
    #[must_use]
    pub fn new(config: NetConfig) -> Self {
        Network::new_reusing(config, None)
    }

    /// [`Network::new`], recycling the allocations of a previously
    /// [`reclaim`](Network::reclaim)ed network. The arena is an allocation
    /// cache only: the new network starts from a fully cleared state and
    /// behaves byte-identically to a fresh one.
    #[must_use]
    pub fn new_reusing(config: NetConfig, arena: Option<NetArena<M>>) -> Self {
        let arena = arena.unwrap_or_default();
        let has_faults = !config.faults.is_empty();
        Network {
            shared: Arc::new(Shared {
                sched: Mutex::new(Sched {
                    now: VirtualInstant::EPOCH,
                    actors: Vec::new(),
                    stats: NetStats::default(),
                    deadlocked: None,
                    spare_slots: arena.slots,
                }),
                mailboxes: RwLock::new(Vec::new()),
                spare_mailboxes: Mutex::new(arena.mailboxes),
                faults: Mutex::new(config.faults),
                has_faults,
                now_ns: AtomicU64::new(VirtualInstant::EPOCH.as_nanos()),
                mode: config.mode,
                latency: config.latency,
                seed: config.seed,
                ack_timeout: config.ack_timeout,
                tap: config.tap,
                start: std::time::Instant::now(),
                parks: AtomicU64::new(0),
                wakes: AtomicU64::new(0),
            }),
        }
    }

    /// Takes the network apart and recycles its allocations into a
    /// [`NetArena`] for the next [`Network::new_reusing`]. Returns `None`
    /// when other clones of the network (or live endpoints) still exist —
    /// reclamation requires sole ownership, so it is safe to call
    /// opportunistically after every run.
    #[must_use]
    pub fn reclaim(self) -> Option<NetArena<M>> {
        let shared = Arc::try_unwrap(self.shared).ok()?;
        let sched = shared.sched.into_inner();
        let mut slots = sched.actors;
        slots.extend(sched.spare_slots);
        for slot in &mut slots {
            slot.doorbell = None;
            slot.wake_at = None;
            slot.wait_epoch = 0;
        }
        let mut mailboxes = Vec::new();
        for mut arc in shared
            .mailboxes
            .into_inner()
            .into_iter()
            .chain(shared.spare_mailboxes.into_inner())
        {
            // A leaked endpoint keeps its shard alive; skip that shard
            // rather than aliasing it into the next network.
            if let Some(mailbox) = Arc::get_mut(&mut arc) {
                mailbox.get_mut().recycle();
                mailboxes.push(arc);
            }
        }
        Some(NetArena { slots, mailboxes })
    }

    /// Registers a new endpoint (one partition / participating thread).
    ///
    /// The endpoint is counted as *running* from this moment, so register it
    /// before handing it to its thread — otherwise virtual time may advance
    /// past events the thread would have handled.
    pub fn endpoint(&self, name: impl Into<Arc<str>>) -> Endpoint<M> {
        let name = name.into();
        let mailbox = match self.shared.spare_mailboxes.lock().pop() {
            Some(arc) => arc,
            None => Arc::new(Mutex::new(Mailbox::empty())),
        };
        let mut sched = self.shared.sched.lock();
        let id =
            PartitionId::new(u32::try_from(sched.actors.len()).expect("fewer than 2^32 endpoints"));
        let slot = match sched.spare_slots.pop() {
            Some(mut slot) => {
                let cv = Arc::clone(&slot.cv);
                slot = ActorSlot::fresh(name, cv);
                slot
            }
            None => ActorSlot::fresh(name, Arc::new(Condvar::new())),
        };
        sched.actors.push(slot);
        drop(sched);
        self.shared.mailboxes.write().push(Arc::clone(&mailbox));
        Endpoint {
            net: self.clone(),
            id,
            mailbox,
            retired: false,
        }
    }

    /// Current time (virtual, or wall-clock since creation in real mode).
    ///
    /// In virtual mode this is a lock-free atomic read: the clock only
    /// moves while every live endpoint is blocked, so a running caller
    /// always sees the exact current instant.
    #[must_use]
    pub fn now(&self) -> VirtualInstant {
        match self.shared.mode {
            ClockMode::Virtual => {
                VirtualInstant::from_nanos(self.shared.now_ns.load(Ordering::Acquire))
            }
            ClockMode::Real => self.real_now(),
        }
    }

    /// Snapshot of the message counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.shared.sched.lock().stats.clone()
    }

    /// Snapshot of the scheduler's park/wake handoff counters (wall-clock
    /// facts — see [`SchedStats`] for why these are not deterministic).
    #[must_use]
    pub fn sched_stats(&self) -> SchedStats {
        SchedStats {
            parks: self.shared.parks.load(Ordering::Relaxed),
            wakes: self.shared.wakes.load(Ordering::Relaxed),
        }
    }

    fn real_now(&self) -> VirtualInstant {
        let nanos = self.shared.start.elapsed().as_nanos();
        VirtualInstant::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }

    fn now_locked(&self, sched: &Sched) -> VirtualInstant {
        match self.shared.mode {
            ClockMode::Virtual => sched.now,
            ClockMode::Real => self.real_now(),
        }
    }

    fn mailbox_of(&self, id: PartitionId) -> Option<Arc<Mutex<Mailbox<M>>>> {
        self.shared.mailboxes.read().get(id.index()).map(Arc::clone)
    }

    fn send_from(&self, src: PartitionId, dst: PartitionId, msg: M) {
        let class = msg.class();
        let correlation = msg.correlation();
        let tap_event = |at, deliver_at, seq| TapEvent {
            src,
            dst,
            class,
            correlation,
            at,
            deliver_at,
            seq,
        };
        // Stable while we run: the sender's own endpoint is running, so
        // the advance arbiter cannot move the clock under us.
        let now = self.now();

        // Fault decisions are pure functions of per-link budgets; the
        // common fault-free case skips the lock entirely.
        let (lost, corrupted) = if self.shared.has_faults {
            let mut faults = self.shared.faults.lock();
            if faults.should_lose(src, dst, class) {
                (true, false)
            } else {
                (false, faults.should_corrupt(src, dst, class))
            }
        } else {
            (false, false)
        };

        let Some(mailbox) = self.mailbox_of(dst) else {
            // Destination never registered: nothing to deliver to and no
            // link row to book a per-link sequence on (ids normally only
            // come from registration, so this needs a hand-built
            // `PartitionId`). The message was still *accepted* — count it
            // and surface it to the tap like a datagram to a dead host,
            // with the link sequence pinned to 0.
            let mut sched = self.shared.sched.lock();
            if lost {
                sched.stats.record_dropped(class);
            } else {
                sched.stats.record_sent(class);
                if corrupted {
                    sched.stats.record_corrupted(class);
                }
            }
            drop(sched);
            if let Some(tap) = &self.shared.tap {
                let event = tap_event(now, now, 0);
                if lost {
                    tap.on_dropped(&event);
                } else {
                    tap.on_sent(&event);
                    if corrupted {
                        tap.on_corrupted(&event);
                    }
                }
            }
            return;
        };

        if lost {
            // A lost message still occupies its slot in the per-link
            // sequence, so tap consumers see a unique (src, dst, seq) per
            // message whether it was delivered or lost.
            let seq = {
                let mut mb = mailbox.lock();
                let link = mb.link(src);
                let seq = link.seq;
                link.seq += 1;
                seq
            };
            self.shared.sched.lock().stats.record_dropped(class);
            if let Some(tap) = &self.shared.tap {
                tap.on_dropped(&tap_event(now, now, seq));
            }
            return;
        }

        // Receiver shard: book the link slot, sample the latency, apply
        // the per-link FIFO clamp and enqueue — all without touching any
        // other endpoint's traffic.
        let (seq, deliver_at, raw, eff, delivered) = {
            let mut mb = mailbox.lock();
            let alive = mb.alive;
            let link = mb.link(src);
            let seq = link.seq;
            link.seq += 1;
            let raw = self.shared.latency.sample(self.shared.seed, src, dst, seq);
            let eff = effective_latency(raw, self.shared.ack_timeout);
            let mut deliver_at = now.saturating_add(eff);
            // Per-link FIFO (Assumption 2): never deliver before an
            // earlier message on the same link.
            if deliver_at <= link.last_delivery {
                deliver_at = link
                    .last_delivery
                    .saturating_add(VirtualDuration::from_nanos(1));
            }
            link.last_delivery = deliver_at;
            if alive {
                mb.queue.push(Reverse(Envelope {
                    deliver_at,
                    src,
                    seq,
                    sent_at: now,
                    msg: (!corrupted).then_some(msg),
                }));
            }
            // A message to a retired endpoint is lost like a datagram to a
            // dead host — but it was accepted, so counters and tap still
            // see it.
            (seq, deliver_at, raw, eff, alive)
        };

        // Scheduler shard: counters plus the blocked-receiver check — the
        // small clock/blocked-state critical section.
        let mut wake_dst = None;
        {
            let mut sched = self.shared.sched.lock();
            sched.stats.record_sent(class);
            if corrupted {
                sched.stats.record_corrupted(class);
            }
            if eff > raw && !raw.is_zero() {
                sched.stats.record_retransmissions(
                    eff.as_nanos().saturating_sub(raw.as_nanos()) / raw.as_nanos().max(1),
                );
            }
            if delivered {
                // If the destination is blocked waiting for messages,
                // ensure the scheduler knows when it becomes wakeable —
                // and wake it (alone) if the message is already
                // deliverable. A message still in flight needs no wake-up:
                // only a time advance can make it deliverable, and the
                // advance arbiter wakes exactly the endpoints whose
                // wake-up point was reached.
                let now = self.now_locked(&sched);
                let slot = &mut sched.actors[dst.index()];
                if slot.alive && !slot.running && slot.blocked_on.receives_messages() {
                    slot.wake_at = Some(match slot.wake_at {
                        Some(existing) => existing.min(deliver_at),
                        None => deliver_at,
                    });
                    let deliverable = match self.shared.mode {
                        ClockMode::Virtual => deliver_at <= now,
                        // Real mode has no advance arbiter: the receiver
                        // must wake to rearm its wall-clock wait for the
                        // new delivery time.
                        ClockMode::Real => true,
                    };
                    if deliverable {
                        wake_dst = Some(Arc::clone(&slot.cv));
                    }
                }
            }
        }
        if let Some(tap) = &self.shared.tap {
            let event = tap_event(now, deliver_at, seq);
            tap.on_sent(&event);
            if corrupted {
                tap.on_corrupted(&event);
            }
        }
        if let Some(cv) = wake_dst {
            self.shared.wakes.fetch_add(1, Ordering::Relaxed);
            cv.notify_one();
        }
    }

    /// Core blocking primitive.
    ///
    /// Re-evaluates `pred` under the scheduler lock (with the caller's own
    /// mailbox shard locked beneath it) whenever woken; while blocked,
    /// `wake_hint` tells the scheduler the earliest instant at which
    /// `pred` could become true (None = only a message or retirement can
    /// help).
    fn block_until<T>(
        &self,
        id: PartitionId,
        mailbox: &Mutex<Mailbox<M>>,
        kind: BlockKind,
        mut pred: impl FnMut(&mut Sched, &mut Mailbox<M>, VirtualInstant) -> Option<T>,
        mut wake_hint: impl FnMut(&Sched, &Mailbox<M>, VirtualInstant) -> Option<VirtualInstant>,
    ) -> Result<T, SimError> {
        let mut sched = self.shared.sched.lock();
        // Each endpoint parks on its own slot; wake-ups are targeted at
        // exactly the endpoints whose predicate may now hold.
        let cv = Arc::clone(&sched.actors[id.index()].cv);
        loop {
            if let Some(info) = &sched.deadlocked {
                return Err(SimError::Deadlock(info.clone()));
            }
            let now = self.now_locked(&sched);
            let hint = {
                let mut mb = mailbox.lock();
                if let Some(v) = pred(&mut sched, &mut mb, now) {
                    sched.actors[id.index()].running = true;
                    return Ok(v);
                }
                wake_hint(&sched, &mb, now)
            };
            {
                let slot = &mut sched.actors[id.index()];
                slot.running = false;
                slot.blocked_on = kind;
                slot.wake_at = hint;
            }
            match self.shared.mode {
                ClockMode::Virtual => {
                    // If our own blocking triggered an advance (or deadlock
                    // detection), the notification fired before we could
                    // wait — re-evaluate instead of waiting for it.
                    let changed =
                        advance_if_blocked(&mut sched, &self.shared.now_ns, &self.shared.wakes);
                    if !changed && sched.deadlocked.is_none() {
                        self.shared.parks.fetch_add(1, Ordering::Relaxed);
                        cv.wait(&mut sched);
                    }
                }
                ClockMode::Real => match hint {
                    Some(t) => {
                        let dur: std::time::Duration = t.duration_since(self.real_now()).into();
                        self.shared.parks.fetch_add(1, Ordering::Relaxed);
                        let _ = cv.wait_for(&mut sched, dur);
                    }
                    None => {
                        self.shared.parks.fetch_add(1, Ordering::Relaxed);
                        cv.wait(&mut sched);
                    }
                },
            }
        }
    }

    fn retire_actor(&self, id: PartitionId, mailbox: &Mutex<Mailbox<M>>) {
        mailbox.lock().alive = false;
        let mut sched = self.shared.sched.lock();
        let slot = &mut sched.actors[id.index()];
        if !slot.alive {
            return;
        }
        slot.alive = false;
        slot.running = false;
        if self.shared.mode == ClockMode::Virtual {
            advance_if_blocked(&mut sched, &self.shared.now_ns, &self.shared.wakes);
        }
    }

    /// Rings endpoint `id`'s doorbell at virtual instant `at`, replacing
    /// any pending doorbell: the endpoint's next (or current)
    /// [`Endpoint::park_wait`] returns [`Parked::Doorbell`] once virtual
    /// time reaches `at`.
    ///
    /// This is the targeted-wake hook for *wait-condition* scheduling
    /// above the network (the runtime's wake-on-release object
    /// arbitration): the component that knows when a parked thread's wait
    /// condition can next hold schedules exactly that thread, instead of
    /// every waiter polling on a timer. Overwrite semantics are
    /// deliberate — the scheduler recomputes the wake-up on every state
    /// change, and the latest computation supersedes earlier ones.
    ///
    /// `epoch` must be the wait epoch the computation was based on (the
    /// value of [`Endpoint::begin_wait`] that the target published to the
    /// scheduler, e.g. in an object's waiter entry). A mismatch means the
    /// targeted wait has since ended — the doorbell would be stale, and
    /// is dropped. Unknown or retired endpoints are ignored too.
    pub fn schedule_wake(&self, id: PartitionId, at: VirtualInstant, epoch: u64) {
        let mailbox = self.mailbox_of(id);
        let mut sched = self.shared.sched.lock();
        let i = id.index();
        if i >= sched.actors.len() || !sched.actors[i].alive {
            return;
        }
        let now = self.now_locked(&sched);
        let head = mailbox.as_ref().and_then(|mb| mb.lock().head_deliver_at());
        let slot = &mut sched.actors[i];
        if slot.wait_epoch != epoch {
            return; // stale: computed against an earlier, finished wait
        }
        slot.doorbell = Some(at);
        let mut wake = None;
        if !slot.running && slot.blocked_on == BlockKind::Park {
            // Re-derive the park's wake hint (min of next delivery and the
            // new doorbell).
            slot.wake_at = Some(match head {
                Some(h) => h.min(at),
                None => at,
            });
            let due = match self.shared.mode {
                // Wake the owner only if the bell is already due — the
                // advance arbiter will deliver future bells at `at`.
                ClockMode::Virtual => at <= now,
                // Real mode has no advance arbiter: the owner must wake to
                // re-arm its wall-clock wait for the new bell.
                ClockMode::Real => true,
            };
            if due {
                wake = Some(Arc::clone(&slot.cv));
            }
        }
        drop(sched);
        if let Some(cv) = wake {
            self.shared.wakes.fetch_add(1, Ordering::Relaxed);
            cv.notify_one();
        }
    }
}

/// One participant's connection to the [`Network`] — the paper's partition.
///
/// Sending is `&self`; receiving is `&mut self` (an endpoint has a single
/// consumer: its owning thread). Dropping the endpoint retires it.
pub struct Endpoint<M> {
    net: Network<M>,
    id: PartitionId,
    /// This endpoint's own receive shard (cached so the receive paths
    /// never touch the shard directory).
    mailbox: Arc<Mutex<Mailbox<M>>>,
    retired: bool,
}

impl<M> fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("retired", &self.retired)
            .finish()
    }
}

impl<M: Send + Classify> Endpoint<M> {
    /// This endpoint's partition id.
    #[must_use]
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// The network this endpoint belongs to.
    #[must_use]
    pub fn network(&self) -> &Network<M> {
        &self.net
    }

    /// Current (virtual) time.
    #[must_use]
    pub fn now(&self) -> VirtualInstant {
        self.net.now()
    }

    /// Sends `msg` to `dst` asynchronously (fire and forget, like the
    /// paper's "asynchronous remote procedure calls (without out
    /// parameters)").
    pub fn send(&self, dst: PartitionId, msg: M) {
        self.net.send_from(self.id, dst, msg);
    }

    /// Receives the next message, blocking until one is deliverable.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the whole simulation can no longer make
    /// progress (virtual mode only).
    pub fn recv(&mut self) -> Result<Received<M>, SimError> {
        self.net.block_until(
            self.id,
            &self.mailbox,
            BlockKind::Recv,
            |_, mb, now| mb.pop_ready(now),
            |_, mb, _| mb.head_deliver_at(),
        )
    }

    /// Receives the next message if one is already deliverable.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the simulation already deadlocked.
    pub fn try_recv(&mut self) -> Result<Option<Received<M>>, SimError> {
        let sched = self.net.shared.sched.lock();
        if let Some(info) = &sched.deadlocked {
            return Err(SimError::Deadlock(info.clone()));
        }
        let now = self.net.now_locked(&sched);
        Ok(self.mailbox.lock().pop_ready(now))
    }

    /// Receives the next message, waiting at most `timeout`.
    ///
    /// Returns `Ok(None)` on timeout — the hook the runtime uses to treat
    /// lost messages as the failure exception (§3.4).
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the whole simulation can no longer make
    /// progress.
    pub fn recv_timeout(
        &mut self,
        timeout: VirtualDuration,
    ) -> Result<Option<Received<M>>, SimError> {
        let deadline = self.net.now().saturating_add(timeout);
        self.recv_deadline(deadline)
    }

    /// Receives the next message, waiting until `deadline` at the latest —
    /// [`Endpoint::recv_timeout`] with an absolute instant instead of a
    /// duration, so per-round protocol waits (the §3.4 signalling timeout,
    /// the bounded exit wait, the membership extension's bounded resolution
    /// wait) can share one deadline across many receive calls without the
    /// caller re-deriving a remaining duration each time.
    ///
    /// Returns `Ok(None)` once virtual time reaches `deadline` with nothing
    /// deliverable.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the whole simulation can no longer make
    /// progress.
    pub fn recv_deadline(
        &mut self,
        deadline: VirtualInstant,
    ) -> Result<Option<Received<M>>, SimError> {
        self.net.block_until(
            self.id,
            &self.mailbox,
            BlockKind::Recv,
            |_, mb, now| match mb.pop_ready(now) {
                Some(r) => Some(Some(r)),
                None if now >= deadline => Some(None),
                None => None,
            },
            |_, mb, _| match mb.head_deliver_at() {
                Some(h) => Some(h.min(deadline)),
                None => Some(deadline),
            },
        )
    }

    /// Parks until a message becomes deliverable or this endpoint's
    /// doorbell rings — the wait-condition-driven counterpart of polling
    /// with [`Endpoint::recv_timeout`]. While parked, the endpoint
    /// contributes no wake-up point beyond its doorbell (if set) and its
    /// next delivery (if any): a waiter whose condition can only be
    /// enabled by *another* thread parks unboundedly and is woken by a
    /// targeted [`Network::schedule_wake`] from whoever enables it.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the whole simulation can no longer make
    /// progress. With doorbell-less parked waiters this now also covers
    /// waits nobody will ever enable — a wait-for cycle that the old
    /// polling design would spin on forever.
    pub fn park_wait(&mut self) -> Result<Parked<M>, SimError> {
        self.park_wait_until(None)
    }

    /// Like [`Endpoint::park_wait`], but additionally wakes with
    /// [`Parked::Deadline`] once virtual time reaches `deadline` (when one
    /// is given). The deadline is independent of the doorbell: it belongs
    /// to the *caller* (e.g. a scheduled crash-stop instant bounding an
    /// object-acquisition wait), while the doorbell belongs to whatever
    /// scheduler the wait's epoch was published to — a deadline wake-up
    /// neither consumes nor reorders pending doorbells, and a message or
    /// doorbell due at the same instant is reported first.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the whole simulation can no longer make
    /// progress.
    pub fn park_wait_until(
        &mut self,
        deadline: Option<VirtualInstant>,
    ) -> Result<Parked<M>, SimError> {
        let id = self.id;
        self.net.block_until(
            id,
            &self.mailbox,
            BlockKind::Park,
            |sched, mb, now| {
                if let Some(received) = mb.pop_ready(now) {
                    return Some(Parked::Msg(received));
                }
                let slot = &mut sched.actors[id.index()];
                if slot.doorbell.is_some_and(|at| at <= now) {
                    slot.doorbell = None;
                    return Some(Parked::Doorbell);
                }
                if deadline.is_some_and(|at| at <= now) {
                    return Some(Parked::Deadline);
                }
                None
            },
            |sched, mb, _| {
                let head = mb.head_deliver_at();
                let bell = sched.actors[id.index()].doorbell;
                let hint = match (head, bell) {
                    (Some(h), Some(b)) => Some(h.min(b)),
                    (head, bell) => head.or(bell),
                };
                match (hint, deadline) {
                    (Some(h), Some(d)) => Some(h.min(d)),
                    (hint, deadline) => hint.or(deadline),
                }
            },
        )
    }

    /// Opens a new parked wait: discards any doorbell left over from an
    /// earlier wait and returns the wait's fresh epoch. Publish the epoch
    /// to whichever scheduler will compute this wait's wake-ups (e.g. an
    /// object's waiter queue); [`Network::schedule_wake`] calls carrying
    /// an older epoch are ignored from this point on, so a scheduler that
    /// raced against the end of the previous wait cannot ring a stale
    /// bell into this one.
    pub fn begin_wait(&self) -> u64 {
        let mut sched = self.net.shared.sched.lock();
        let slot = &mut sched.actors[self.id.index()];
        slot.doorbell = None;
        slot.wait_epoch += 1;
        slot.wait_epoch
    }

    /// Sleeps for `dur` — models local computation taking virtual time.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the simulation deadlocked while sleeping.
    pub fn sleep(&self, dur: VirtualDuration) -> Result<(), SimError> {
        if dur.is_zero() {
            return Ok(());
        }
        let deadline = self.net.now().saturating_add(dur);
        self.net.block_until(
            self.id,
            &self.mailbox,
            BlockKind::Sleep,
            |_, _, now| (now >= deadline).then_some(()),
            |_, _, _| Some(deadline),
        )
    }

    /// Retires the endpoint: the scheduler stops waiting for this
    /// participant and undelivered messages to it are discarded.
    pub fn retire(mut self) {
        self.retired = true;
        self.net.retire_actor(self.id, &self.mailbox);
    }
}

impl<M> Drop for Endpoint<M> {
    fn drop(&mut self) {
        if !self.retired {
            // Duplicate of retire() without the Classify bound.
            self.mailbox.lock().alive = false;
            let net = &self.net;
            let mut sched = net.shared.sched.lock();
            let slot = &mut sched.actors[self.id.index()];
            if slot.alive {
                slot.alive = false;
                slot.running = false;
                if net.shared.mode == ClockMode::Virtual {
                    advance_if_blocked(&mut sched, &net.shared.now_ns, &net.shared.wakes);
                }
            }
        }
    }
}

/// The virtual-time advance arbiter (callable without `M: Classify`, for
/// `Drop`): if every live endpoint is blocked, advances time to the
/// earliest wake-up point and notifies **only** the endpoints whose
/// wake-up point was reached — the unique next runner(s), not the herd —
/// or, with no wake-up point anywhere, declares deadlock and wakes
/// everyone to report it. Returns whether it changed the world, so the
/// calling blocker re-evaluates instead of missing its own wake-up.
fn advance_if_blocked(sched: &mut Sched, now_ns: &AtomicU64, wakes: &AtomicU64) -> bool {
    if sched.deadlocked.is_some() {
        return false;
    }
    let live = sched.actors.iter().filter(|a| a.alive);
    let mut min_wake: Option<VirtualInstant> = None;
    for actor in live {
        if actor.running {
            return false; // someone can still make progress right now
        }
        if let Some(w) = actor.wake_at {
            if w <= sched.now {
                return false; // already wakeable; it was notified
            }
            min_wake = Some(match min_wake {
                Some(m) => m.min(w),
                None => w,
            });
        }
    }
    match min_wake {
        Some(t) => {
            sched.now = t;
            now_ns.store(t.as_nanos(), Ordering::Release);
            for actor in &sched.actors {
                if actor.alive && !actor.running && actor.wake_at.is_some_and(|w| w <= t) {
                    wakes.fetch_add(1, Ordering::Relaxed);
                    actor.cv.notify_one();
                }
            }
            true
        }
        None => {
            let any_live = sched.actors.iter().any(|a| a.alive);
            if !any_live {
                return false; // everyone retired: nothing to schedule
            }
            let info = DeadlockInfo {
                at: sched.now,
                blocked: sched
                    .actors
                    .iter()
                    .filter(|a| a.alive)
                    .map(|a| (a.name.to_string(), a.blocked_on.label()))
                    .collect(),
            };
            sched.deadlocked = Some(info);
            // Everyone must observe the deadlock: this is the one
            // remaining broadcast wake-up, and the simulation is over.
            for actor in &sched.actors {
                if actor.alive && !actor.running {
                    wakes.fetch_add(1, Ordering::Relaxed);
                    actor.cv.notify_one();
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caa_core::time::secs;
    use std::thread;

    #[derive(Debug, PartialEq)]
    struct Msg(u64);
    impl Classify for Msg {
        fn class(&self) -> &'static str {
            "Msg"
        }
    }

    fn virtual_net(latency: LatencyModel) -> Network<Msg> {
        Network::new(NetConfig {
            mode: ClockMode::Virtual,
            latency,
            seed: 42,
            ack_timeout: None,
            faults: FaultPlan::new(),
            tap: None,
        })
    }

    #[test]
    fn ping_pong_advances_virtual_time() {
        let net = virtual_net(LatencyModel::Fixed(secs(0.5)));
        let mut a = net.endpoint("a");
        let mut b = net.endpoint("b");
        let (a_id, b_id) = (a.id(), b.id());

        let tb = thread::spawn(move || {
            let got = b.recv().unwrap();
            assert_eq!(got.msg.unwrap(), Msg(1));
            b.send(a_id, Msg(2));
            b.retire();
            got.delivered_at
        });
        a.send(b_id, Msg(1));
        let reply = a.recv().unwrap();
        assert_eq!(reply.msg.unwrap(), Msg(2));
        // Two half-second hops.
        assert_eq!(reply.delivered_at, VirtualInstant::EPOCH + secs(1.0));
        let t_b = tb.join().unwrap();
        assert_eq!(t_b, VirtualInstant::EPOCH + secs(0.5));
        a.retire();
        assert_eq!(net.stats().sent("Msg"), 2);
    }

    #[test]
    fn sleep_advances_time_without_busy_waiting() {
        let net = virtual_net(LatencyModel::default());
        let a = net.endpoint("a");
        let wall = std::time::Instant::now();
        a.sleep(secs(3600.0)).unwrap();
        assert!(net.now() >= VirtualInstant::EPOCH + secs(3600.0));
        assert!(
            wall.elapsed() < std::time::Duration::from_secs(5),
            "an hour of virtual time must take well under 5 s of wall time"
        );
        a.retire();
    }

    #[test]
    fn fifo_per_link_despite_random_latencies() {
        let net = virtual_net(LatencyModel::UniformUpTo(secs(1.0)));
        let a = net.endpoint("a");
        let mut b = net.endpoint("b");
        let b_id = b.id();
        for i in 0..50 {
            a.send(b_id, Msg(i));
        }
        a.retire();
        let t = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..50 {
                got.push(b.recv().unwrap().msg.unwrap().0);
            }
            b.retire();
            got
        });
        let got = t.join().unwrap();
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "per-link FIFO violated");
    }

    #[test]
    fn deadlock_is_detected_and_reported_to_all() {
        let net = virtual_net(LatencyModel::default());
        let mut a = net.endpoint("alice");
        let mut b = net.endpoint("bob");
        // Both wait forever for messages nobody sends.
        let ta = thread::spawn(move || a.recv());
        let tb = thread::spawn(move || b.recv());
        let ra = ta.join().unwrap();
        let rb = tb.join().unwrap();
        for r in [ra, rb] {
            match r {
                Err(SimError::Deadlock(info)) => {
                    assert_eq!(info.blocked.len(), 2);
                    let names: Vec<_> = info.blocked.iter().map(|(n, _)| n.as_str()).collect();
                    assert!(names.contains(&"alice") && names.contains(&"bob"));
                }
                other => panic!("expected deadlock, got {other:?}"),
            }
        }
    }

    #[test]
    fn sleeping_peer_prevents_false_deadlock() {
        let net = virtual_net(LatencyModel::Fixed(secs(0.1)));
        let mut a = net.endpoint("a");
        let b = net.endpoint("b");
        let a_id = a.id();
        let tb = thread::spawn(move || {
            b.sleep(secs(5.0)).unwrap();
            b.send(a_id, Msg(9));
            b.retire();
        });
        let got = a.recv().unwrap();
        assert_eq!(got.msg.unwrap(), Msg(9));
        assert_eq!(got.delivered_at, VirtualInstant::EPOCH + secs(5.1));
        tb.join().unwrap();
        a.retire();
    }

    #[test]
    fn recv_timeout_returns_none_when_nothing_arrives() {
        let net = virtual_net(LatencyModel::default());
        let mut a = net.endpoint("a");
        // A timed wait has a wake-up point, so a lone endpoint is not a
        // deadlock: virtual time advances straight to the timeout.
        let got = a.recv_timeout(secs(2.0)).unwrap();
        assert!(got.is_none());
        assert!(net.now() >= VirtualInstant::EPOCH + secs(2.0));
        a.retire();
    }

    #[test]
    fn recv_timeout_returns_message_when_it_arrives_first() {
        let net = virtual_net(LatencyModel::Fixed(secs(0.3)));
        let mut a = net.endpoint("a");
        let b = net.endpoint("b");
        let a_id = a.id();
        let tb = thread::spawn(move || {
            b.send(a_id, Msg(5));
            b.retire();
        });
        let got = a.recv_timeout(secs(10.0)).unwrap();
        assert_eq!(got.unwrap().msg.unwrap(), Msg(5));
        tb.join().unwrap();
        a.retire();
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let net = virtual_net(LatencyModel::Fixed(secs(1.0)));
        let mut a = net.endpoint("a");
        let b = net.endpoint("b");
        let a_id = a.id();
        assert!(a.try_recv().unwrap().is_none());
        b.send(a_id, Msg(1));
        // In flight, not yet deliverable.
        assert!(a.try_recv().unwrap().is_none());
        // Retire the idle endpoint: every live endpoint must be driven by a
        // thread, or it blocks virtual-time advancement.
        b.retire();
        // After sleeping past the latency it is deliverable.
        a.sleep(secs(1.5)).unwrap();
        assert_eq!(a.try_recv().unwrap().unwrap().msg.unwrap(), Msg(1));
        a.retire();
    }

    #[test]
    fn lost_messages_are_counted_and_not_delivered() {
        let net: Network<Msg> = Network::new(NetConfig {
            mode: ClockMode::Virtual,
            latency: LatencyModel::default(),
            seed: 1,
            ack_timeout: None,
            faults: FaultPlan::new().lose(crate::FaultSpec::any().count(1)),
            tap: None,
        });
        let mut a = net.endpoint("a");
        let b = net.endpoint("b");
        let a_id = a.id();
        b.send(a_id, Msg(1)); // lost
        b.send(a_id, Msg(2)); // delivered
        b.retire();
        let got = a.recv().unwrap();
        assert_eq!(got.msg.unwrap(), Msg(2));
        assert_eq!(net.stats().dropped("Msg"), 1);
        assert_eq!(net.stats().sent("Msg"), 1);
        a.retire();
    }

    #[test]
    fn corrupted_messages_arrive_with_no_payload() {
        let net: Network<Msg> = Network::new(NetConfig {
            mode: ClockMode::Virtual,
            latency: LatencyModel::default(),
            seed: 1,
            ack_timeout: None,
            faults: FaultPlan::new().corrupt(crate::FaultSpec::any().count(1)),
            tap: None,
        });
        let mut a = net.endpoint("a");
        let b = net.endpoint("b");
        let a_id = a.id();
        b.send(a_id, Msg(1));
        b.retire();
        let got = a.recv().unwrap();
        assert!(got.is_corrupted());
        assert_eq!(net.stats().corrupted("Msg"), 1);
        a.retire();
    }

    #[test]
    fn messages_to_retired_endpoints_are_discarded() {
        let net = virtual_net(LatencyModel::default());
        let a = net.endpoint("a");
        let b = net.endpoint("b");
        let b_id = b.id();
        b.retire();
        a.send(b_id, Msg(1)); // must not panic or deadlock
        a.retire();
    }

    #[test]
    fn dropping_an_endpoint_retires_it() {
        let net = virtual_net(LatencyModel::default());
        let mut a = net.endpoint("a");
        {
            let _b = net.endpoint("b");
            // _b dropped here without explicit retire.
        }
        // With b gone, a alone waiting forever is a deadlock.
        let r = a.recv();
        assert!(matches!(r, Err(SimError::Deadlock(_))));
    }

    #[test]
    fn real_mode_delivers_with_wall_clock_delay() {
        let net: Network<Msg> = Network::new(NetConfig {
            mode: ClockMode::Real,
            latency: LatencyModel::Fixed(VirtualDuration::from_millis(30)),
            seed: 0,
            ack_timeout: None,
            faults: FaultPlan::new(),
            tap: None,
        });
        let mut a = net.endpoint("a");
        let b = net.endpoint("b");
        let a_id = a.id();
        let wall = std::time::Instant::now();
        b.send(a_id, Msg(3));
        let got = a.recv().unwrap();
        assert_eq!(got.msg.unwrap(), Msg(3));
        assert!(
            wall.elapsed() >= std::time::Duration::from_millis(25),
            "real mode must consume wall time"
        );
        a.retire();
        b.retire();
    }

    #[test]
    fn park_wait_consumes_a_scheduled_doorbell_at_its_instant() {
        let net = virtual_net(LatencyModel::default());
        let mut a = net.endpoint("a");
        let epoch = a.begin_wait();
        net.schedule_wake(a.id(), VirtualInstant::EPOCH + secs(0.005), epoch);
        match a.park_wait().unwrap() {
            Parked::Doorbell => {}
            other => panic!("expected the doorbell, got {other:?}"),
        }
        assert_eq!(net.now(), VirtualInstant::EPOCH + secs(0.005));
        // The bell is consumed: a further park has no wake-up point and,
        // with no peers, is a detected deadlock (not a hang).
        assert!(matches!(a.park_wait(), Err(SimError::Deadlock(_))));
    }

    #[test]
    fn doorbell_with_a_stale_epoch_is_ignored() {
        let net = virtual_net(LatencyModel::default());
        let mut a = net.endpoint("a");
        let old = a.begin_wait();
        let _current = a.begin_wait();
        net.schedule_wake(a.id(), VirtualInstant::EPOCH + secs(0.001), old);
        assert!(
            matches!(a.park_wait(), Err(SimError::Deadlock(_))),
            "a doorbell computed for a finished wait must not wake the new one"
        );
    }

    #[test]
    fn deliverable_message_beats_a_same_instant_doorbell() {
        let net = virtual_net(LatencyModel::Fixed(secs(0.001)));
        let mut a = net.endpoint("a");
        let b = net.endpoint("b");
        let a_id = a.id();
        let epoch = a.begin_wait();
        // Bell and delivery land at the same virtual instant (1 ms): the
        // park must drain the message first, then report the bell.
        net.schedule_wake(a_id, VirtualInstant::EPOCH + secs(0.001), epoch);
        b.send(a_id, Msg(1));
        b.retire();
        match a.park_wait().unwrap() {
            Parked::Msg(m) => assert_eq!(m.msg.unwrap(), Msg(1)),
            other => panic!("message must be reported before the bell, got {other:?}"),
        }
        match a.park_wait().unwrap() {
            Parked::Doorbell => {}
            other => panic!("only one message was sent, got {other:?}"),
        }
        a.retire();
    }

    #[test]
    fn three_party_broadcast_order_is_deterministic() {
        // Run the same scenario twice; delivery times must be identical.
        let run = || {
            let net = virtual_net(LatencyModel::UniformUpTo(secs(1.0)));
            let a = net.endpoint("a");
            let mut b = net.endpoint("b");
            let mut c = net.endpoint("c");
            let (b_id, c_id) = (b.id(), c.id());
            for i in 0..10 {
                a.send(b_id, Msg(i));
                a.send(c_id, Msg(i));
            }
            a.retire();
            let tb = thread::spawn(move || {
                let mut ts = Vec::new();
                for _ in 0..10 {
                    ts.push(b.recv().unwrap().delivered_at);
                }
                b.retire();
                ts
            });
            let tc = thread::spawn(move || {
                let mut ts = Vec::new();
                for _ in 0..10 {
                    ts.push(c.recv().unwrap().delivered_at);
                }
                c.retire();
                ts
            });
            (tb.join().unwrap(), tc.join().unwrap())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn arena_reuse_replays_byte_identically() {
        // The same two-party exchange, fresh vs. recycled: every delivery
        // instant must match, and the arena must actually be reclaimed.
        let exchange = |arena: Option<NetArena<Msg>>| {
            let net = Network::new_reusing(
                NetConfig {
                    mode: ClockMode::Virtual,
                    latency: LatencyModel::UniformUpTo(secs(1.0)),
                    seed: 7,
                    ack_timeout: None,
                    faults: FaultPlan::new(),
                    tap: None,
                },
                arena,
            );
            let a = net.endpoint("a");
            let mut b = net.endpoint("b");
            let b_id = b.id();
            for i in 0..20 {
                a.send(b_id, Msg(i));
            }
            a.retire();
            let tb = thread::spawn(move || {
                let mut ts = Vec::new();
                for _ in 0..20 {
                    ts.push(b.recv().unwrap().delivered_at);
                }
                b.retire();
                ts
            });
            let ts = tb.join().unwrap();
            (ts, net.reclaim().expect("sole owner after join"))
        };
        let (fresh, arena) = exchange(None);
        assert_eq!(arena.capacity(), 2, "both endpoints reclaimed");
        let (reused, arena2) = exchange(Some(arena));
        assert_eq!(fresh, reused, "arena reuse must not change delivery");
        assert_eq!(arena2.capacity(), 2);
    }

    #[test]
    fn reclaim_requires_sole_ownership() {
        let net = virtual_net(LatencyModel::default());
        let clone = net.clone();
        assert!(net.reclaim().is_none(), "a live clone blocks reclamation");
        drop(clone);
    }
}
