//! Message-latency models.
//!
//! The paper's experiments parameterise the system by `Tmmax`, "the maximum
//! time of message passing between two concurrent execution threads"
//! (§3.2.3). The default model draws per-message latencies uniformly from
//! `(0, Tmmax]`, deterministically: the latency of the *k*-th message on a
//! link is a pure function of `(seed, src, dst, k)`, so a simulation replays
//! identically regardless of OS thread scheduling.
//!
//! An optional **acknowledgment timeout** models the behaviour the paper
//! observed past `Tmmax ≈ 1 s` (Figure 10): "the execution time will
//! increase dramatically once the time of message passing becomes longer
//! than one second". When a message's latency exceeds the ack timeout, the
//! sender's timer expires and it retransmits; each expiry waits out the
//! timeout and the retransmitted copy experiences the same latency, so the
//! effective delay becomes `L + ⌊L/T⌋ · (T + L)`.

use caa_core::ids::PartitionId;
use caa_core::time::VirtualDuration;

/// Strategy for assigning a latency to each message.
///
/// # Examples
///
/// ```
/// use caa_simnet::LatencyModel;
/// use caa_core::time::secs;
/// use caa_core::ids::PartitionId;
///
/// let model = LatencyModel::UniformUpTo(secs(0.2));
/// let (a, b) = (PartitionId::new(0), PartitionId::new(1));
/// let l = model.sample(42, a, b, 0);
/// assert!(l > secs(0.0) && l <= secs(0.2));
/// // Deterministic: same inputs, same latency.
/// assert_eq!(l, model.sample(42, a, b, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(VirtualDuration),
    /// Latency drawn uniformly from `(0, max]` — the paper's `Tmmax` bound.
    UniformUpTo(VirtualDuration),
}

impl LatencyModel {
    /// The latency of the `seq`-th message from `src` to `dst`.
    ///
    /// Pure and deterministic in all four arguments.
    #[must_use]
    pub fn sample(
        &self,
        seed: u64,
        src: PartitionId,
        dst: PartitionId,
        seq: u64,
    ) -> VirtualDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::UniformUpTo(max) => {
                if max.is_zero() {
                    return VirtualDuration::ZERO;
                }
                let h = mix(
                    seed ^ 0x9e37_79b9_7f4a_7c15,
                    (u64::from(src.as_u32()) << 40) ^ (u64::from(dst.as_u32()) << 16) ^ seq,
                );
                // Map to (0, max]: never zero so causality is strict.
                let nanos = max.as_nanos();
                VirtualDuration::from_nanos((h % nanos) + 1)
            }
        }
    }

    /// The maximum latency this model can produce (the paper's `Tmmax`).
    #[must_use]
    pub fn max(&self) -> VirtualDuration {
        match *self {
            LatencyModel::Fixed(d) | LatencyModel::UniformUpTo(d) => d,
        }
    }
}

impl Default for LatencyModel {
    /// A negligible fixed latency (1 µs), suitable for unit tests.
    fn default() -> Self {
        LatencyModel::Fixed(VirtualDuration::from_micros(1))
    }
}

/// Applies the acknowledgment-timeout retransmission model: a message whose
/// raw latency `l` exceeds the timeout `t` is retransmitted `⌊l/t⌋` times,
/// each retransmission costing the elapsed timeout plus another delivery
/// attempt.
///
/// Returns the raw latency unchanged when `l ≤ t`.
///
/// # Examples
///
/// ```
/// use caa_simnet::effective_latency;
/// use caa_core::time::secs;
///
/// // Below the timeout nothing changes.
/// assert_eq!(effective_latency(secs(0.8), Some(secs(1.0))), secs(0.8));
/// // 1.5 s latency with a 1 s timer: one retransmission.
/// assert_eq!(
///     effective_latency(secs(1.5), Some(secs(1.0))),
///     secs(1.5 + (1.0 + 1.5)),
/// );
/// assert_eq!(effective_latency(secs(1.5), None), secs(1.5));
/// ```
#[must_use]
pub fn effective_latency(
    raw: VirtualDuration,
    ack_timeout: Option<VirtualDuration>,
) -> VirtualDuration {
    match ack_timeout {
        Some(t) if !t.is_zero() && raw > t => {
            let retx = raw.as_nanos() / t.as_nanos();
            let retx = u32::try_from(retx.min(64)).expect("capped at 64");
            raw.saturating_add((t.saturating_add(raw)) * retx)
        }
        _ => raw,
    }
}

/// SplitMix64 finaliser: a strong 64-bit mixer for deterministic sampling.
fn mix(seed: u64, value: u64) -> u64 {
    let mut z = seed
        .wrapping_add(value.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caa_core::time::secs;

    const A: PartitionId = PartitionId::new(0);
    const B: PartitionId = PartitionId::new(1);

    #[test]
    fn fixed_is_constant() {
        let m = LatencyModel::Fixed(secs(0.25));
        for seq in 0..10 {
            assert_eq!(m.sample(7, A, B, seq), secs(0.25));
        }
    }

    #[test]
    fn uniform_is_within_bounds_and_nonzero() {
        let m = LatencyModel::UniformUpTo(secs(1.0));
        for seq in 0..1000 {
            let l = m.sample(123, A, B, seq);
            assert!(l > VirtualDuration::ZERO, "latency must be positive");
            assert!(l <= secs(1.0), "latency must not exceed Tmmax");
        }
    }

    #[test]
    fn uniform_mean_is_near_half_max() {
        let m = LatencyModel::UniformUpTo(secs(2.0));
        let n = 4000;
        let total: f64 = (0..n)
            .map(|seq| m.sample(99, A, B, seq).as_secs_f64())
            .sum();
        let mean = total / f64::from(n as u32);
        assert!(
            (mean - 1.0).abs() < 0.05,
            "uniform(0, 2] mean should be ~1.0, got {mean}"
        );
    }

    #[test]
    fn sampling_is_deterministic_but_varies_by_inputs() {
        let m = LatencyModel::UniformUpTo(secs(1.0));
        assert_eq!(m.sample(1, A, B, 5), m.sample(1, A, B, 5));
        let distinct: std::collections::HashSet<u64> = (0..50)
            .map(|seq| m.sample(1, A, B, seq).as_nanos())
            .collect();
        assert!(distinct.len() > 40, "sequence should decorrelate latencies");
        assert_ne!(m.sample(1, A, B, 0), m.sample(2, A, B, 0));
        assert_ne!(m.sample(1, A, B, 0), m.sample(1, B, A, 0));
    }

    #[test]
    fn zero_max_yields_zero() {
        let m = LatencyModel::UniformUpTo(VirtualDuration::ZERO);
        assert_eq!(m.sample(1, A, B, 0), VirtualDuration::ZERO);
    }

    #[test]
    fn effective_latency_below_timeout_is_identity() {
        for l in [0.1, 0.5, 0.99, 1.0] {
            assert_eq!(
                effective_latency(secs(l), Some(secs(1.0))),
                secs(l),
                "latency {l} is within the ack timeout"
            );
        }
    }

    #[test]
    fn effective_latency_grows_superlinearly_past_timeout() {
        let t = Some(secs(1.0));
        let below = effective_latency(secs(0.9), t);
        let above = effective_latency(secs(1.8), t);
        // Doubling the raw latency across the knee multiplies the effective
        // latency by far more than 2.
        assert!(above.as_secs_f64() / below.as_secs_f64() > 3.0);
        // Two full timeouts: two retransmissions.
        assert_eq!(
            effective_latency(secs(2.5), t),
            secs(2.5) + (secs(1.0) + secs(2.5)) * 2
        );
    }

    #[test]
    fn effective_latency_without_timeout_is_identity() {
        assert_eq!(effective_latency(secs(5.0), None), secs(5.0));
        assert_eq!(
            effective_latency(secs(5.0), Some(VirtualDuration::ZERO)),
            secs(5.0)
        );
    }

    #[test]
    fn default_model_is_fast() {
        assert!(LatencyModel::default().max() < secs(0.001));
    }
}
