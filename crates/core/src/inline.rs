//! Small-vector storage for the hot-path sets of the coordination
//! protocols.
//!
//! Recovery rounds snapshot an action's *live member set* (membership
//! view, signalling group, exit group) once per protocol round; with
//! `Vec<ThreadId>` every snapshot is a heap allocation on the execute hot
//! path. Group sizes are tiny — the scenario model tops out well below a
//! dozen participants — so [`InlineVec`] keeps up to `N` elements inline
//! on the stack and only spills to a heap `Vec` beyond that. The spill
//! path keeps full `Vec` semantics, so correctness never depends on the
//! inline capacity; `N` is purely a performance knob.
//!
//! The type is deliberately minimal: `Copy` elements, the handful of
//! mutators the membership arithmetic needs (`push`, `retain`,
//! `sort_unstable`, `dedup`, `extend_from_slice`, `clear`), and `Deref`
//! to a slice for everything else. It is **not** a general-purpose
//! `smallvec` replacement.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A vector of `Copy` elements that stores up to `N` of them inline.
///
/// # Examples
///
/// ```
/// use caa_core::inline::InlineVec;
///
/// let mut v: InlineVec<u32, 4> = InlineVec::new();
/// v.push(3);
/// v.extend_from_slice(&[1, 2]);
/// v.sort_unstable();
/// assert_eq!(&v[..], &[1, 2, 3]);
///
/// // Exceeding the inline capacity spills to the heap transparently.
/// v.extend_from_slice(&[4, 5, 6]);
/// assert_eq!(v.len(), 6);
/// ```
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    /// Number of live elements. When `heap` is empty they live in
    /// `inline[..len]`; once spilled, `heap.len() == len` and `inline` is
    /// dead storage.
    len: usize,
    inline: [T; N],
    heap: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    #[must_use]
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            heap: Vec::new(),
        }
    }

    /// Copies `slice` into a fresh vector (inline when it fits).
    #[must_use]
    pub fn from_slice(slice: &[T]) -> Self {
        let mut v = InlineVec::new();
        v.extend_from_slice(slice);
        v
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the elements have spilled to the heap.
    #[must_use]
    pub fn spilled(&self) -> bool {
        !self.heap.is_empty()
    }

    /// The elements as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        if self.heap.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.heap
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.heap.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.heap
        }
    }

    /// Removes every element (keeps any heap capacity for reuse).
    pub fn clear(&mut self) {
        self.len = 0;
        self.heap.clear();
    }

    /// Appends one element, spilling to the heap at `N + 1` elements.
    pub fn push(&mut self, value: T) {
        if self.heap.is_empty() && self.len < N {
            self.inline[self.len] = value;
        } else {
            self.spill();
            self.heap.push(value);
        }
        self.len += 1;
    }

    /// Appends every element of `slice`.
    pub fn extend_from_slice(&mut self, slice: &[T]) {
        if self.heap.is_empty() && self.len + slice.len() <= N {
            self.inline[self.len..self.len + slice.len()].copy_from_slice(slice);
        } else {
            self.spill();
            self.heap.extend_from_slice(slice);
        }
        self.len += slice.len();
    }

    /// Keeps only the elements for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        if self.heap.is_empty() {
            let mut write = 0;
            for read in 0..self.len {
                let v = self.inline[read];
                if keep(&v) {
                    self.inline[write] = v;
                    write += 1;
                }
            }
            self.len = write;
        } else {
            self.heap.retain(|v| keep(v));
            self.len = self.heap.len();
        }
    }

    /// Removes consecutive duplicates (call after `sort_unstable` for a
    /// set-like dedup).
    pub fn dedup(&mut self)
    where
        T: PartialEq,
    {
        if self.heap.is_empty() {
            let mut write = 0;
            for read in 0..self.len {
                if write == 0 || self.inline[write - 1] != self.inline[read] {
                    self.inline[write] = self.inline[read];
                    write += 1;
                }
            }
            self.len = write;
        } else {
            self.heap.dedup();
            self.len = self.heap.len();
        }
    }

    /// Moves the inline elements into the heap `Vec` (no-op once spilled).
    fn spill(&mut self) {
        if self.heap.is_empty() && self.len > 0 {
            self.heap.reserve(self.len + 1);
            self.heap.extend_from_slice(&self.inline[..self.len]);
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(&v[..], &[0, 1, 2, 3]);
        v.push(4);
        assert!(v.spilled());
        assert_eq!(&v[..], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_slice_and_extend() {
        let mut v: InlineVec<u32, 3> = InlineVec::from_slice(&[5, 6]);
        assert!(!v.spilled());
        v.extend_from_slice(&[7, 8]);
        assert!(v.spilled());
        assert_eq!(&v[..], &[5, 6, 7, 8]);
        // Extending an already-spilled vector appends on the heap.
        v.extend_from_slice(&[9]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn retain_inline_and_spilled() {
        let mut v: InlineVec<u32, 8> = InlineVec::from_slice(&[1, 2, 3, 4, 5]);
        v.retain(|&x| x % 2 == 1);
        assert_eq!(&v[..], &[1, 3, 5]);
        let mut big: InlineVec<u32, 2> = InlineVec::from_slice(&[1, 2, 3, 4, 5]);
        assert!(big.spilled());
        big.retain(|&x| x > 2);
        assert_eq!(&big[..], &[3, 4, 5]);
    }

    #[test]
    fn sort_and_dedup_like_a_set() {
        let mut v: InlineVec<u32, 8> = InlineVec::from_slice(&[3, 1, 3, 2, 1]);
        v.sort_unstable();
        v.dedup();
        assert_eq!(&v[..], &[1, 2, 3]);
        let mut big: InlineVec<u32, 2> = InlineVec::from_slice(&[3, 1, 3, 2, 1]);
        big.sort_unstable();
        big.dedup();
        assert_eq!(&big[..], &[1, 2, 3]);
    }

    #[test]
    fn clear_empties_without_losing_heap_capacity() {
        let mut v: InlineVec<u32, 2> = InlineVec::from_slice(&[1, 2, 3]);
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert_eq!(&v[..], &[9]);
    }

    #[test]
    fn equality_and_iteration() {
        let a: InlineVec<u32, 4> = InlineVec::from_slice(&[1, 2]);
        let b: InlineVec<u32, 1> = InlineVec::from_slice(&[1, 2]);
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(a.as_slice(), b.as_slice());
        let c: InlineVec<u32, 4> = [2u32, 1].into_iter().collect();
        assert_eq!(c.len(), 2);
    }
}
