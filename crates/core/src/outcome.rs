//! Outcomes of actions and handler verdicts (§3.1 control flow).
//!
//! The termination model applies: "in any exceptional situations, handlers
//! take over the duties of participating threads in a CA action and complete
//! the action either successfully or by signalling an exception ε to the
//! enclosing action".

use std::fmt;

use crate::exception::{ExceptionId, Signal};

/// How one participant's involvement in a CA action concluded.
///
/// # Examples
///
/// ```
/// use caa_core::outcome::ActionOutcome;
/// use caa_core::exception::ExceptionId;
///
/// let ok = ActionOutcome::Success;
/// assert!(ok.is_success());
/// let sig = ActionOutcome::Signalled(ExceptionId::new("L_PLATE"));
/// assert_eq!(sig.signalled(), Some(&ExceptionId::new("L_PLATE")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ActionOutcome {
    /// The action completed successfully — either no exception occurred, or
    /// forward error recovery repaired the state and the action "exit\[ed\]
    /// with a successful outcome" (Figure 1).
    Success,
    /// The action signalled interface exception `ε` to the enclosing action.
    Signalled(ExceptionId),
    /// The action aborted and **all** of its effects were undone (`µ`).
    Undone,
    /// The action aborted but its effects may not have been undone
    /// completely (`ƒ`). The enclosing action is responsible for handling
    /// the remaining errors.
    Failed,
}

impl ActionOutcome {
    /// Whether the action completed successfully.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, ActionOutcome::Success)
    }

    /// The signalled interface exception, if any.
    ///
    /// `Undone` and `Failed` report the pre-defined exceptions µ and ƒ via
    /// [`ActionOutcome::exception_id`]; this accessor returns only ordinary
    /// interface exceptions.
    #[must_use]
    pub fn signalled(&self) -> Option<&ExceptionId> {
        match self {
            ActionOutcome::Signalled(id) => Some(id),
            _ => None,
        }
    }

    /// The exception delivered to the enclosing context, if any (including
    /// µ for `Undone` and ƒ for `Failed`).
    #[must_use]
    pub fn exception_id(&self) -> Option<ExceptionId> {
        match self {
            ActionOutcome::Success => None,
            ActionOutcome::Signalled(id) => Some(id.clone()),
            ActionOutcome::Undone => Some(ExceptionId::undo()),
            ActionOutcome::Failed => Some(ExceptionId::failure()),
        }
    }
}

impl fmt::Display for ActionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionOutcome::Success => f.write_str("success"),
            ActionOutcome::Signalled(id) => write!(f, "signalled {id}"),
            ActionOutcome::Undone => f.write_str("undone (µ)"),
            ActionOutcome::Failed => f.write_str("failed (ƒ)"),
        }
    }
}

impl From<Signal> for ActionOutcome {
    /// The outcome a participant reports after signalling (φ means the
    /// handler recovered and the action succeeded for this participant).
    fn from(signal: Signal) -> Self {
        match signal {
            Signal::None => ActionOutcome::Success,
            Signal::Exception(id) => ActionOutcome::Signalled(id),
            Signal::Undo => ActionOutcome::Undone,
            Signal::Failure => ActionOutcome::Failed,
        }
    }
}

/// What an exception handler decides after attempting recovery.
///
/// A handler "take\[s\] over the duties" of its thread and must either
/// complete the action or escalate. The verdict feeds the signalling
/// algorithm of §3.4.
///
/// # Examples
///
/// ```
/// use caa_core::outcome::HandlerVerdict;
/// use caa_core::exception::{ExceptionId, Signal};
///
/// assert_eq!(HandlerVerdict::Recovered.to_signal(), Signal::None);
/// assert_eq!(
///     HandlerVerdict::Signal(ExceptionId::new("NCS_FAIL")).to_signal(),
///     Signal::Exception(ExceptionId::new("NCS_FAIL")),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HandlerVerdict {
    /// Forward recovery succeeded; the action can complete normally.
    Recovered,
    /// Recovery was only partially successful; signal `ε` to the enclosing
    /// action.
    Signal(ExceptionId),
    /// Request abortion with undo: every participant must undo the action's
    /// effects and signal `µ`.
    Undo,
    /// Recovery failed and undo is not possible: every participant must
    /// signal `ƒ`.
    Fail,
}

impl HandlerVerdict {
    /// The signal this verdict contributes to the signalling algorithm.
    #[must_use]
    pub fn to_signal(&self) -> Signal {
        match self {
            HandlerVerdict::Recovered => Signal::None,
            HandlerVerdict::Signal(id) => Signal::from(id.clone()),
            HandlerVerdict::Undo => Signal::Undo,
            HandlerVerdict::Fail => Signal::Failure,
        }
    }
}

impl fmt::Display for HandlerVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandlerVerdict::Recovered => f.write_str("recovered"),
            HandlerVerdict::Signal(id) => write!(f, "signal {id}"),
            HandlerVerdict::Undo => f.write_str("undo (µ)"),
            HandlerVerdict::Fail => f.write_str("fail (ƒ)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        assert!(ActionOutcome::Success.is_success());
        assert_eq!(ActionOutcome::Success.exception_id(), None);
        assert_eq!(
            ActionOutcome::Undone.exception_id(),
            Some(ExceptionId::undo())
        );
        assert_eq!(
            ActionOutcome::Failed.exception_id(),
            Some(ExceptionId::failure())
        );
        let sig = ActionOutcome::Signalled(ExceptionId::new("x"));
        assert_eq!(sig.signalled(), Some(&ExceptionId::new("x")));
        assert_eq!(ActionOutcome::Undone.signalled(), None);
    }

    #[test]
    fn outcome_from_signal() {
        assert_eq!(ActionOutcome::from(Signal::None), ActionOutcome::Success);
        assert_eq!(ActionOutcome::from(Signal::Undo), ActionOutcome::Undone);
        assert_eq!(ActionOutcome::from(Signal::Failure), ActionOutcome::Failed);
        assert_eq!(
            ActionOutcome::from(Signal::Exception(ExceptionId::new("e"))),
            ActionOutcome::Signalled(ExceptionId::new("e"))
        );
    }

    #[test]
    fn verdict_to_signal() {
        assert_eq!(HandlerVerdict::Recovered.to_signal(), Signal::None);
        assert_eq!(HandlerVerdict::Undo.to_signal(), Signal::Undo);
        assert_eq!(HandlerVerdict::Fail.to_signal(), Signal::Failure);
        // Signalling µ/ƒ through the generic Signal variant maps to the
        // dedicated coordination-forcing variants.
        assert_eq!(
            HandlerVerdict::Signal(ExceptionId::undo()).to_signal(),
            Signal::Undo
        );
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(ActionOutcome::Undone.to_string(), "undone (µ)");
        assert_eq!(HandlerVerdict::Fail.to_string(), "fail (ƒ)");
        assert_eq!(
            ActionOutcome::Signalled(ExceptionId::new("L_PLATE")).to_string(),
            "signalled L_PLATE"
        );
    }
}
