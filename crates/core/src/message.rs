//! Protocol messages exchanged between participating threads.
//!
//! §3.3.1 defines the three messages of the resolution algorithm
//! (`Exception`, `Suspended`, `Commit`) and §3.4 adds `toBeSignalled` for the
//! signalling algorithm. The run-time additionally uses a synchronous-exit
//! vote (§5.1: "a simple protocol is also implemented for participating
//! threads to leave a CA action synchronously") and an opaque application
//! payload for the cooperating roles' own communication. Application-related
//! message passing "is treated independently" (§3.3.1), which the counters in
//! `caa-simnet` preserve by classifying messages by [`MessageKind`].

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::exception::{Exception, ExceptionId, Signal};
use crate::ids::{ActionId, ThreadId};

/// A shared, empty removed-thread set — the `view_removed` payload of
/// every crash-free [`Message::Commit`]. Cloning the returned `Arc` is
/// allocation-free, so the common case (no view changes) costs nothing
/// per recipient *or* per message.
#[must_use]
pub fn no_removals() -> Arc<[ThreadId]> {
    static EMPTY: std::sync::OnceLock<Arc<[ThreadId]>> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new())))
}

/// Round number of the signalling algorithm: the first exchange, or the
/// second exchange forced by a failed undo (§3.4, case 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SignalRound {
    /// First exchange of intended signals.
    First,
    /// Second exchange after every participant attempted its undo operations.
    AfterUndo,
}

impl fmt::Display for SignalRound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalRound::First => f.write_str("round-1"),
            SignalRound::AfterUndo => f.write_str("round-2"),
        }
    }
}

/// An opaque, in-process application payload exchanged between cooperating
/// roles of the same action.
///
/// The coordination protocols never inspect application payloads; they only
/// count them (the paper's complexity results exclude application traffic).
/// Payloads are `Any + Send` because the whole system runs in one process;
/// a wire format would replace this with serialized bytes.
pub struct AppPayload(Box<dyn Any + Send>);

impl AppPayload {
    /// Wraps a value as an application payload.
    #[must_use]
    pub fn new<T: Any + Send>(value: T) -> Self {
        AppPayload(Box::new(value))
    }

    /// Recovers the payload by type, or returns `self` unchanged.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the payload is not a `T`, so the caller can
    /// try another type.
    pub fn downcast<T: Any + Send>(self) -> Result<T, AppPayload> {
        match self.0.downcast::<T>() {
            Ok(boxed) => Ok(*boxed),
            Err(original) => Err(AppPayload(original)),
        }
    }

    /// Borrows the payload by type, if it is a `T`.
    #[must_use]
    pub fn downcast_ref<T: Any + Send>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }
}

impl fmt::Debug for AppPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AppPayload(..)")
    }
}

/// A message of the coordination protocols.
///
/// # Examples
///
/// ```
/// use caa_core::message::{Message, MessageKind};
/// use caa_core::ids::{ActionId, ThreadId};
/// use caa_core::exception::Exception;
///
/// let m = Message::Exception {
///     action: ActionId::top_level(1),
///     from: ThreadId::new(0),
///     exception: Exception::new("vm_stop"),
/// };
/// assert_eq!(m.kind(), MessageKind::Exception);
/// ```
#[derive(Debug)]
pub enum Message {
    /// `Exception(A, Ti, E)`: sent by thread `Ti` to all other threads of
    /// action `A` when exception `E` is raised by `Ti` (§3.3.1).
    Exception {
        /// The action in whose context the exception was raised.
        action: ActionId,
        /// The raising thread.
        from: ThreadId,
        /// The raised exception.
        exception: Exception,
    },
    /// `Suspended(A, Ti, S)`: sent by each thread that did not raise an
    /// exception but received `Exception` or `Suspended` messages (§3.3.1).
    Suspended {
        /// The action whose recovery suspends this thread.
        action: ActionId,
        /// The suspending thread.
        from: ThreadId,
    },
    /// `Commit(A, E)`: sent by the resolving thread to all other threads once
    /// it completes resolution; `E` is the resolving exception (§3.3.1).
    ///
    /// The crash-aware extension piggybacks the resolver's membership view
    /// on the commit: `view_epoch` and the *cumulative* `view_removed` set
    /// (both trivial — epoch 0, empty — for crash-free recoveries). A
    /// receiver that learns the resolving exception before a racing
    /// [`ViewChange`](Message::ViewChange) announcement reaches it still
    /// adopts the shrunken view, so its signalling and exit rounds do not
    /// wait on presumed-crashed peers.
    Commit {
        /// The action being recovered.
        action: ActionId,
        /// The thread that performed resolution.
        from: ThreadId,
        /// The resolving exception every participant must handle.
        resolved: ExceptionId,
        /// The resolver's membership epoch at commit time.
        view_epoch: u32,
        /// Every thread the resolver's view removed since epoch 0. Shared
        /// (`Arc`) so a commit broadcast to `N − 1` peers clones one
        /// reference per recipient instead of deep-copying the set; use
        /// [`no_removals`] for the crash-free (empty) case.
        view_removed: Arc<[ThreadId]>,
    },
    /// Auxiliary agreement message used by *baseline* resolution protocols
    /// (e.g. the propose/confirm rounds of Romanovsky et al. 1996). The
    /// paper's own algorithm never sends these; they exist so the
    /// comparative experiments of §5.3 run over the identical substrate.
    Resolve {
        /// The action being recovered.
        action: ActionId,
        /// The sending thread.
        from: ThreadId,
        /// Protocol-defined stage label (e.g. `"propose"`, `"confirm"`).
        stage: &'static str,
        /// The exception this stage is about.
        exception: ExceptionId,
    },
    /// `toBeSignalled(Ti, ε)`: sent by thread `Ti` to all participating
    /// threads when it intends to signal `ε` to the enclosing action (§3.4).
    ToBeSignalled {
        /// The nested action whose outcome is being coordinated.
        action: ActionId,
        /// The announcing thread.
        from: ThreadId,
        /// Which exchange this announcement belongs to.
        round: SignalRound,
        /// The intended signal (`φ`, `ε`, `µ` or `ƒ`).
        signal: Signal,
    },
    /// Membership view change of the crash-aware resolution extension: the
    /// sender's bounded resolution wait expired, it presumes the `removed`
    /// threads crashed, and it re-runs resolution over the shrunken view.
    /// Receivers apply the same removal (synthesizing the crash exception
    /// for each removed thread) so every survivor agrees on the membership
    /// `epoch` — and therefore on the resolving exception — before any
    /// handler starts.
    ViewChange {
        /// The action whose membership shrinks.
        action: ActionId,
        /// The thread announcing the view change.
        from: ThreadId,
        /// The new membership epoch (the initial full view is epoch 0).
        epoch: u32,
        /// The threads presumed crashed and removed by this view change.
        /// Shared (`Arc`) so the announcement broadcast clones a reference
        /// per survivor instead of deep-copying the set.
        removed: Arc<[ThreadId]>,
    },
    /// Epoch-numbered rejoin, step 1: a restarted participant asks the
    /// survivors of the action instance for the current membership view
    /// and a state summary so it can re-enter. The requester broadcasts to
    /// every other group member (it cannot know which survived) and acts
    /// on the first grant; duplicate grants are idempotent.
    JoinRequest {
        /// The action instance the restarted thread wants to re-enter.
        action: ActionId,
        /// The restarted (previously removed) thread.
        from: ThreadId,
    },
    /// Epoch-numbered rejoin, step 2: a survivor answers a
    /// [`JoinRequest`](Message::JoinRequest) directly to the requester.
    /// Every survivor that still holds the frame open receives the
    /// broadcast request and independently adopts the growth step —
    /// `thread` re-enters — so the group keeps agreeing on the live
    /// member *set* without a grant broadcast (epoch numbers are
    /// per-thread counters under set-based agreement); the rejoiner
    /// acts on the first grant it receives and drops the duplicates.
    JoinGrant {
        /// The action instance being rejoined.
        action: ActionId,
        /// The granting survivor.
        from: ThreadId,
        /// The re-admitted thread.
        thread: ThreadId,
        /// The granter's membership epoch *after* re-admitting `thread`.
        epoch: u32,
        /// State summary: the granter's cumulative removed set *after*
        /// re-admission (`thread` is no longer in it), so the rejoiner
        /// fast-forwards a fresh full view straight to the granter's
        /// post-grant view. Shared (`Arc`): the broadcast clones a
        /// reference per recipient.
        removed: Arc<[ThreadId]>,
        /// State summary: the frame's current exit epoch, so the rejoiner
        /// votes in the exit round the survivors are (or will be) in.
        exit_epoch: u32,
        /// State summary: the resolving exception the survivors committed
        /// to, when recovery already resolved (`None` for a crash during
        /// normal computation or unresolved recovery).
        resolved: Option<ExceptionId>,
    },
    /// Vote of the synchronous exit protocol (§5.1): a participant is ready
    /// to leave the action; all must be ready before any leaves.
    ExitVote {
        /// The action being left.
        action: ActionId,
        /// The voting thread.
        from: ThreadId,
        /// Exit epoch: distinguishes the normal-completion vote from a
        /// post-recovery vote when both occur in one action instance.
        epoch: u32,
    },
    /// Application-level communication between cooperating roles.
    App {
        /// The action inside which the roles cooperate.
        action: ActionId,
        /// The sending thread.
        from: ThreadId,
        /// An application-chosen tag for dispatching.
        tag: &'static str,
        /// The payload; opaque to the runtime.
        payload: AppPayload,
    },
}

impl Message {
    /// The classification of this message, used by the per-kind counters
    /// that verify the paper's message-complexity claims.
    #[must_use]
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Exception { .. } => MessageKind::Exception,
            Message::Suspended { .. } => MessageKind::Suspended,
            Message::Commit { .. } => MessageKind::Commit,
            Message::Resolve { .. } => MessageKind::Resolve,
            Message::ViewChange { .. } => MessageKind::ViewChange,
            Message::JoinRequest { .. } => MessageKind::JoinRequest,
            Message::JoinGrant { .. } => MessageKind::JoinGrant,
            Message::ToBeSignalled { .. } => MessageKind::ToBeSignalled,
            Message::ExitVote { .. } => MessageKind::ExitVote,
            Message::App { .. } => MessageKind::App,
        }
    }

    /// The action instance this message concerns.
    #[must_use]
    pub fn action(&self) -> ActionId {
        match self {
            Message::Exception { action, .. }
            | Message::Suspended { action, .. }
            | Message::Commit { action, .. }
            | Message::Resolve { action, .. }
            | Message::ViewChange { action, .. }
            | Message::JoinRequest { action, .. }
            | Message::JoinGrant { action, .. }
            | Message::ToBeSignalled { action, .. }
            | Message::ExitVote { action, .. }
            | Message::App { action, .. } => *action,
        }
    }

    /// The sending thread.
    #[must_use]
    pub fn from(&self) -> ThreadId {
        match self {
            Message::Exception { from, .. }
            | Message::Suspended { from, .. }
            | Message::Commit { from, .. }
            | Message::Resolve { from, .. }
            | Message::ViewChange { from, .. }
            | Message::JoinRequest { from, .. }
            | Message::JoinGrant { from, .. }
            | Message::ToBeSignalled { from, .. }
            | Message::ExitVote { from, .. }
            | Message::App { from, .. } => *from,
        }
    }

    /// Whether this is a control-plane message of the coordination
    /// protocols (everything except application payloads).
    #[must_use]
    pub fn is_control(&self) -> bool {
        !matches!(self, Message::App { .. })
    }
}

/// Classification of protocol messages for statistics (§3.3.3, §3.4 count
/// messages per kind; application traffic is excluded from those counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Resolution algorithm: a raised exception is broadcast.
    Exception,
    /// Resolution algorithm: a thread announces it has suspended.
    Suspended,
    /// Resolution algorithm: the resolver announces the resolving exception.
    Commit,
    /// Baseline resolution protocols: auxiliary agreement stages.
    Resolve,
    /// Membership: a bounded resolution wait expired and the sender removed
    /// the presumed-crashed threads from its view.
    ViewChange,
    /// Membership: a restarted participant asks a survivor for the view
    /// and a state summary (epoch-numbered rejoin, step 1).
    JoinRequest,
    /// Membership: a survivor re-admits a restarted participant at the
    /// next epoch (epoch-numbered rejoin, step 2).
    JoinGrant,
    /// Signalling algorithm: an intended signal is broadcast.
    ToBeSignalled,
    /// Synchronous exit protocol vote.
    ExitVote,
    /// Application traffic between cooperating roles.
    App,
}

impl MessageKind {
    /// All message kinds, in a stable order (useful for reports).
    pub const ALL: [MessageKind; 10] = [
        MessageKind::Exception,
        MessageKind::Suspended,
        MessageKind::Commit,
        MessageKind::Resolve,
        MessageKind::ViewChange,
        MessageKind::JoinRequest,
        MessageKind::JoinGrant,
        MessageKind::ToBeSignalled,
        MessageKind::ExitVote,
        MessageKind::App,
    ];

    /// Whether messages of this kind count toward the resolution-algorithm
    /// complexity results of §3.3.3. `ViewChange`, `JoinRequest` and
    /// `JoinGrant` are excluded: the §3.3.3 bounds assume crash-free
    /// resolution, and the membership messages only occur on the
    /// presumed-crash / rejoin paths.
    #[must_use]
    pub fn counts_for_resolution(self) -> bool {
        matches!(
            self,
            MessageKind::Exception
                | MessageKind::Suspended
                | MessageKind::Commit
                | MessageKind::Resolve
        )
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MessageKind::Exception => "Exception",
            MessageKind::Suspended => "Suspended",
            MessageKind::Commit => "Commit",
            MessageKind::Resolve => "Resolve",
            MessageKind::ViewChange => "ViewChange",
            MessageKind::JoinRequest => "JoinRequest",
            MessageKind::JoinGrant => "JoinGrant",
            MessageKind::ToBeSignalled => "toBeSignalled",
            MessageKind::ExitVote => "ExitVote",
            MessageKind::App => "App",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_action() -> ActionId {
        ActionId::top_level(42)
    }

    #[test]
    fn kinds_are_classified() {
        let a = sample_action();
        let t = ThreadId::new(1);
        let msgs = vec![
            Message::Exception {
                action: a,
                from: t,
                exception: Exception::new("e1"),
            },
            Message::Suspended { action: a, from: t },
            Message::Commit {
                action: a,
                from: t,
                resolved: ExceptionId::new("e1"),
                view_epoch: 0,
                view_removed: no_removals(),
            },
            Message::Resolve {
                action: a,
                from: t,
                stage: "propose",
                exception: ExceptionId::new("e1"),
            },
            Message::ViewChange {
                action: a,
                from: t,
                epoch: 1,
                removed: Arc::from(vec![ThreadId::new(2)]),
            },
            Message::JoinRequest { action: a, from: t },
            Message::JoinGrant {
                action: a,
                from: t,
                thread: ThreadId::new(2),
                epoch: 2,
                removed: Arc::from(vec![ThreadId::new(2)]),
                exit_epoch: 1,
                resolved: Some(ExceptionId::new("e1")),
            },
            Message::ToBeSignalled {
                action: a,
                from: t,
                round: SignalRound::First,
                signal: Signal::None,
            },
            Message::ExitVote {
                action: a,
                from: t,
                epoch: 0,
            },
            Message::App {
                action: a,
                from: t,
                tag: "position",
                payload: AppPayload::new(7u32),
            },
        ];
        let kinds: Vec<MessageKind> = msgs.iter().map(Message::kind).collect();
        assert_eq!(kinds, MessageKind::ALL.to_vec());
        for m in &msgs {
            assert_eq!(m.action(), a);
            assert_eq!(m.from(), t);
        }
    }

    #[test]
    fn control_vs_app() {
        let a = sample_action();
        let control = Message::Suspended {
            action: a,
            from: ThreadId::new(0),
        };
        let app = Message::App {
            action: a,
            from: ThreadId::new(0),
            tag: "x",
            payload: AppPayload::new((1, 2)),
        };
        assert!(control.is_control());
        assert!(!app.is_control());
    }

    #[test]
    fn resolution_counting_kinds() {
        assert!(MessageKind::Exception.counts_for_resolution());
        assert!(MessageKind::Suspended.counts_for_resolution());
        assert!(MessageKind::Commit.counts_for_resolution());
        assert!(MessageKind::Resolve.counts_for_resolution());
        assert!(!MessageKind::ViewChange.counts_for_resolution());
        assert!(!MessageKind::JoinRequest.counts_for_resolution());
        assert!(!MessageKind::JoinGrant.counts_for_resolution());
        assert!(!MessageKind::ToBeSignalled.counts_for_resolution());
        assert!(!MessageKind::ExitVote.counts_for_resolution());
        assert!(!MessageKind::App.counts_for_resolution());
    }

    #[test]
    fn app_payload_downcast() {
        let p = AppPayload::new(String::from("blank#3"));
        assert!(p.downcast_ref::<String>().is_some());
        let p = p.downcast::<u32>().unwrap_err();
        assert_eq!(p.downcast::<String>().unwrap(), "blank#3");
    }

    #[test]
    fn display_formats() {
        assert_eq!(MessageKind::ToBeSignalled.to_string(), "toBeSignalled");
        assert_eq!(SignalRound::First.to_string(), "round-1");
        assert_eq!(SignalRound::AfterUndo.to_string(), "round-2");
    }
}
