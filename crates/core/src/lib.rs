//! Core model types for **coordinated exception handling in distributed
//! object systems** — a reproduction of Xu, Romanovsky & Randell
//! (ICDCS 1998).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`ids`] — ordered thread identifiers, action instances, roles,
//!   partitions;
//! * [`exception`] — exception identities, the pre-defined exceptions `µ`
//!   (undo), `ƒ` (failure), universal and abortion, and the [`Signal`]s of
//!   the signalling algorithm;
//! * [`inline`] — small-vector storage keeping the protocols' tiny live
//!   sets off the heap on the execute hot path;
//! * [`state`] — the N/X/S participant states of the resolution algorithm;
//! * [`membership`] — per-action-instance membership views (epoch + live
//!   member set) for the crash-aware resolution extension;
//! * [`message`] — the protocol messages (`Exception`, `Suspended`,
//!   `Commit`, `ViewChange`, `toBeSignalled`, exit votes, application
//!   payloads);
//! * [`outcome`] — action outcomes and handler verdicts under the
//!   termination model;
//! * [`time`] — virtual-time instants and durations used by the simulated
//!   network and the experiment harness.
//!
//! The crate is deliberately free of concurrency and I/O so that the
//! protocol crates (`caa-exgraph`, `caa-simnet`, `caa-runtime`) can be
//! tested against pure data.
//!
//! # Determinism
//!
//! Nothing here reads a clock or a random source: time is the explicit
//! [`time::VirtualInstant`]/[`time::VirtualDuration`] pair, and every id
//! is caller-assigned. This is the foundation of the workspace-wide
//! byte-exact replay guarantee — all nondeterminism upstream must enter
//! through a seed.
//!
//! # Examples
//!
//! ```
//! use caa_core::exception::{Exception, ExceptionId};
//! use caa_core::ids::ThreadId;
//! use caa_core::state::ParticipantState;
//!
//! // A thread raises an exception and moves to the exceptional state.
//! let raised = Exception::new("vm_stop").with_origin(ThreadId::new(1));
//! let state = ParticipantState::Exceptional;
//! assert!(state.is_halted());
//! assert_eq!(raised.id(), &ExceptionId::new("vm_stop"));
//! ```
//!
//! [`Signal`]: exception::Signal

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod exception;
pub mod ids;
pub mod inline;
pub mod membership;
pub mod message;
pub mod outcome;
pub mod state;
pub mod time;

pub use exception::{Exception, ExceptionId, Signal};
pub use ids::{ActionId, PartitionId, RoleId, ThreadId};
pub use inline::InlineVec;
pub use membership::{MembershipView, ViewChangeOutcome};
pub use message::{AppPayload, Message, MessageKind, SignalRound};
pub use outcome::{ActionOutcome, HandlerVerdict};
pub use state::ParticipantState;
pub use time::{millis, secs, VirtualDuration, VirtualInstant};
