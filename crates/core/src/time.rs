//! Virtual time primitives.
//!
//! The paper's experiments (§5.2–5.3) sweep message-passing, abortion and
//! resolution delays measured in *seconds* (`Tmmax`, `Tabo`, `Treso`), with
//! total runs of 94–262 s. To regenerate those sweeps quickly and
//! deterministically, the whole system is expressed against *virtual* time:
//! nanosecond-precision instants and durations that a scheduler advances
//! explicitly. The same types serve real-time execution, where one virtual
//! nanosecond maps to one wall-clock nanosecond.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_MICRO: u64 = 1_000;

/// A span of virtual time with nanosecond precision.
///
/// `VirtualDuration` mirrors [`std::time::Duration`] but is guaranteed to be
/// a plain 64-bit nanosecond count so it can be scheduled, serialized and
/// compared deterministically across the simulated network.
///
/// # Examples
///
/// ```
/// use caa_core::time::VirtualDuration;
///
/// let t_mmax = VirtualDuration::from_secs_f64(0.2);
/// assert_eq!(t_mmax.as_nanos(), 200_000_000);
/// assert_eq!((t_mmax * 3).as_secs_f64(), 0.6);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualDuration(u64);

impl VirtualDuration {
    /// The zero-length duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0);
    /// The largest representable duration (~584 years).
    pub const MAX: VirtualDuration = VirtualDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        VirtualDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        VirtualDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        VirtualDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        VirtualDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, saturating on overflow.
    ///
    /// Negative and NaN inputs are clamped to zero: delays in the model are
    /// never negative.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return VirtualDuration::ZERO;
        }
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            VirtualDuration::MAX
        } else {
            VirtualDuration(nanos.round() as u64)
        }
    }

    /// Total nanoseconds in this duration.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Whether this duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: VirtualDuration) -> Option<VirtualDuration> {
        match self.0.checked_add(rhs.0) {
            Some(n) => Some(VirtualDuration(n)),
            None => None,
        }
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a dimensionless factor, saturating on overflow and
    /// clamping negative or NaN factors to zero.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> VirtualDuration {
        VirtualDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(
            self.0
                .checked_add(rhs.0)
                .expect("virtual duration overflow"),
        )
    }
}

impl AddAssign for VirtualDuration {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        *self = *self + rhs;
    }
}

impl Sub for VirtualDuration {
    type Output = VirtualDuration;
    fn sub(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual duration underflow"),
        )
    }
}

impl SubAssign for VirtualDuration {
    fn sub_assign(&mut self, rhs: VirtualDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u32> for VirtualDuration {
    type Output = VirtualDuration;
    fn mul(self, rhs: u32) -> VirtualDuration {
        VirtualDuration(
            self.0
                .checked_mul(u64::from(rhs))
                .expect("virtual duration overflow"),
        )
    }
}

impl Div<u32> for VirtualDuration {
    type Output = VirtualDuration;
    fn div(self, rhs: u32) -> VirtualDuration {
        VirtualDuration(self.0 / u64::from(rhs))
    }
}

impl Sum for VirtualDuration {
    fn sum<I: Iterator<Item = VirtualDuration>>(iter: I) -> VirtualDuration {
        iter.fold(VirtualDuration::ZERO, |acc, d| acc.saturating_add(d))
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl From<std::time::Duration> for VirtualDuration {
    fn from(d: std::time::Duration) -> Self {
        let nanos = d.as_nanos();
        if nanos >= u128::from(u64::MAX) {
            VirtualDuration::MAX
        } else {
            VirtualDuration(nanos as u64)
        }
    }
}

impl From<VirtualDuration> for std::time::Duration {
    fn from(d: VirtualDuration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

/// A point on the virtual timeline, measured in nanoseconds since the start
/// of the simulation.
///
/// # Examples
///
/// ```
/// use caa_core::time::{VirtualDuration, VirtualInstant};
///
/// let start = VirtualInstant::EPOCH;
/// let later = start + VirtualDuration::from_millis(250);
/// assert_eq!(later.duration_since(start), VirtualDuration::from_millis(250));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualInstant(u64);

impl VirtualInstant {
    /// The origin of the virtual timeline.
    pub const EPOCH: VirtualInstant = VirtualInstant(0);
    /// The far future; used as "no deadline".
    pub const FAR_FUTURE: VirtualInstant = VirtualInstant(u64::MAX);

    /// Creates an instant from nanoseconds since [`VirtualInstant::EPOCH`].
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        VirtualInstant(nanos)
    }

    /// Nanoseconds since [`VirtualInstant::EPOCH`].
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since [`VirtualInstant::EPOCH`] as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed virtual time since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub const fn duration_since(self, earlier: VirtualInstant) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, d: VirtualDuration) -> Option<VirtualInstant> {
        match self.0.checked_add(d.as_nanos()) {
            Some(n) => Some(VirtualInstant(n)),
            None => None,
        }
    }

    /// Saturating addition (clamps to [`VirtualInstant::FAR_FUTURE`]).
    #[must_use]
    pub const fn saturating_add(self, d: VirtualDuration) -> VirtualInstant {
        VirtualInstant(self.0.saturating_add(d.as_nanos()))
    }
}

impl Add<VirtualDuration> for VirtualInstant {
    type Output = VirtualInstant;
    fn add(self, rhs: VirtualDuration) -> VirtualInstant {
        VirtualInstant(
            self.0
                .checked_add(rhs.as_nanos())
                .expect("virtual instant overflow"),
        )
    }
}

impl AddAssign<VirtualDuration> for VirtualInstant {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        *self = *self + rhs;
    }
}

impl Sub<VirtualDuration> for VirtualInstant {
    type Output = VirtualInstant;
    fn sub(self, rhs: VirtualDuration) -> VirtualInstant {
        VirtualInstant(
            self.0
                .checked_sub(rhs.as_nanos())
                .expect("virtual instant underflow"),
        )
    }
}

impl fmt::Display for VirtualInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:.6}s", self.as_secs_f64())
    }
}

/// Convenience constructor for a [`VirtualDuration`] from fractional seconds.
///
/// # Examples
///
/// ```
/// use caa_core::time::{secs, VirtualDuration};
///
/// assert_eq!(secs(1.5), VirtualDuration::from_millis(1500));
/// ```
#[must_use]
pub fn secs(s: f64) -> VirtualDuration {
    VirtualDuration::from_secs_f64(s)
}

/// Convenience constructor for a [`VirtualDuration`] from whole milliseconds.
///
/// # Examples
///
/// ```
/// use caa_core::time::{millis, secs};
///
/// assert_eq!(millis(250), secs(0.25));
/// ```
#[must_use]
pub fn millis(ms: u64) -> VirtualDuration {
    VirtualDuration::from_millis(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(VirtualDuration::from_secs(2), secs(2.0));
        assert_eq!(VirtualDuration::from_millis(1500), secs(1.5));
        assert_eq!(VirtualDuration::from_micros(1000), millis(1));
        assert_eq!(VirtualDuration::from_nanos(NANOS_PER_SEC), secs(1.0));
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(VirtualDuration::from_secs_f64(-1.0), VirtualDuration::ZERO);
        assert_eq!(
            VirtualDuration::from_secs_f64(f64::NAN),
            VirtualDuration::ZERO
        );
        assert_eq!(
            VirtualDuration::from_secs_f64(f64::INFINITY),
            VirtualDuration::MAX
        );
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = secs(1.25);
        let b = secs(0.75);
        assert_eq!(a + b, secs(2.0));
        assert_eq!(a - b, secs(0.5));
        assert_eq!(a * 4, secs(5.0));
        assert_eq!(a / 5, secs(0.25));
        assert_eq!(b.saturating_sub(a), VirtualDuration::ZERO);
    }

    #[test]
    fn instant_ordering_and_elapsed() {
        let t0 = VirtualInstant::EPOCH;
        let t1 = t0 + secs(3.0);
        assert!(t1 > t0);
        assert_eq!(t1.duration_since(t0), secs(3.0));
        assert_eq!(t0.duration_since(t1), VirtualDuration::ZERO);
    }

    #[test]
    fn saturating_ops_do_not_panic() {
        assert_eq!(
            VirtualDuration::MAX.saturating_add(secs(1.0)),
            VirtualDuration::MAX
        );
        assert_eq!(
            VirtualInstant::FAR_FUTURE.saturating_add(secs(1.0)),
            VirtualInstant::FAR_FUTURE
        );
    }

    #[test]
    fn std_duration_conversion_roundtrip() {
        let d = secs(0.125);
        let std: std::time::Duration = d.into();
        assert_eq!(VirtualDuration::from(std), d);
    }

    #[test]
    fn sum_of_durations() {
        let total: VirtualDuration = [secs(0.5), secs(1.0), secs(0.25)].into_iter().sum();
        assert_eq!(total, secs(1.75));
    }

    #[test]
    fn display_is_nonempty_and_readable() {
        assert_eq!(secs(1.5).to_string(), "1.500000s");
        assert_eq!(
            (VirtualInstant::EPOCH + secs(2.0)).to_string(),
            "@2.000000s"
        );
    }
}
