//! Per-action-instance membership views of the crash-aware resolution
//! extension.
//!
//! §3.4 of the paper bounds waits for the signalling algorithm; the
//! membership extension generalises the same presume-crash rule to the
//! *resolution* algorithm (§3.3.2). Every participant of an action instance
//! carries a [`MembershipView`]: the set of threads it still believes live,
//! tagged with an **epoch** that increments on every view change. When a
//! bounded resolution wait expires, the silent peers are removed from the
//! view, a crash exception is synthesized on their behalf (presume-ƒ in the
//! coordinated-atomic-action tradition: a participant crash is just another
//! exception to be resolved concurrently), and a
//! [`ViewChange`](crate::message::Message::ViewChange) message carries the
//! `(epoch, removed)` pair to the survivors so all of them agree on the
//! same view — and therefore elect the same resolver and commit to the same
//! resolving exception — before any handler starts.
//!
//! This module is pure data: the failure detector that *drives* view
//! changes (deadlines, suspect computation, message exchange) lives in the
//! runtime; the type here only captures the view arithmetic so it can be
//! tested without a simulation.

use std::fmt;

use crate::ids::ThreadId;
use crate::inline::InlineVec;

/// Inline capacity of the membership sets: groups beyond this spill to the
/// heap transparently ([`InlineVec`]), so it is purely a performance knob
/// sized for the scenario spaces the harness actually generates.
const VIEW_INLINE: usize = 8;

/// Outcome of applying a view change to a [`MembershipView`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewChangeOutcome {
    /// The change advanced the view to the new epoch; the listed threads
    /// were removed (in ascending order).
    Applied {
        /// Threads actually removed from the view.
        removed: Vec<ThreadId>,
    },
    /// The change carried an epoch at or below the current one and the
    /// removed set is consistent with what this view already applied:
    /// a duplicate announcement from a peer that detected the same crash
    /// concurrently. Nothing changed.
    Duplicate,
    /// The change conflicts with the view's history: same epoch but a
    /// different removed set, or an epoch that skips ahead of the next
    /// expected one. Survivors of the same instance must derive identical
    /// view sequences, so a conflict indicates a protocol bug (or a
    /// misconfigured timeout that suspected a live peer).
    Conflict {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

/// The membership view one participant holds of one action instance.
///
/// The initial view (epoch 0) contains the action's full group. A view
/// change either shrinks the view (epoch `n+1` removes at least one member
/// of epoch `n` — a crash) or grows it back
/// ([`MembershipView::rejoin`]: epoch `n+1` re-admits one previously
/// removed member — a restarted participant). Every member of the group
/// appears at most once per epoch, so the `(epoch, member-set)` sequence is
/// totally ordered and survivors agree on it.
///
/// # Examples
///
/// ```
/// use caa_core::ids::ThreadId;
/// use caa_core::membership::{MembershipView, ViewChangeOutcome};
///
/// let t = |n| ThreadId::new(n);
/// let mut view = MembershipView::new(vec![t(0), t(1), t(2)]);
/// assert_eq!(view.epoch(), 0);
/// assert!(view.contains(t(1)));
///
/// // Thread 1 is presumed crashed.
/// let outcome = view.apply(1, &[t(1)]);
/// assert!(matches!(outcome, ViewChangeOutcome::Applied { .. }));
/// assert_eq!(view.epoch(), 1);
/// assert_eq!(view.members(), &[t(0), t(2)]);
///
/// // A peer that detected the same crash concurrently is a duplicate.
/// assert_eq!(view.apply(1, &[t(1)]), ViewChangeOutcome::Duplicate);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    /// Live members, sorted ascending, stored inline for the group sizes
    /// the protocols actually see (the view is snapshotted once per
    /// protocol round on the execute hot path).
    members: InlineVec<ThreadId, VIEW_INLINE>,
    removed: InlineVec<ThreadId, VIEW_INLINE>,
    epoch: u32,
}

impl MembershipView {
    /// The initial (epoch 0) view over the action's full group. Members
    /// are kept sorted ascending, matching the runtime's ordered group
    /// `GA`.
    #[must_use]
    pub fn new(members: impl AsRef<[ThreadId]>) -> Self {
        let mut members = InlineVec::from_slice(members.as_ref());
        members.sort_unstable();
        members.dedup();
        MembershipView {
            members,
            removed: InlineVec::new(),
            epoch: 0,
        }
    }

    /// The current epoch (0 = the initial full view).
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The live members, sorted ascending.
    #[must_use]
    pub fn members(&self) -> &[ThreadId] {
        &self.members
    }

    /// Every thread removed so far, sorted ascending.
    #[must_use]
    pub fn removed(&self) -> &[ThreadId] {
        &self.removed
    }

    /// Number of live members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is empty (cannot happen while this participant is
    /// itself live, since it never removes itself).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `thread` is a live member of the current view.
    #[must_use]
    pub fn contains(&self, thread: ThreadId) -> bool {
        self.members.binary_search(&thread).is_ok()
    }

    /// Whether the view ever shrank (epoch > 0).
    #[must_use]
    pub fn changed(&self) -> bool {
        self.epoch > 0
    }

    /// Applies a view change: advance to `epoch`, removing `removed`.
    ///
    /// Accepts exactly the next epoch (`self.epoch() + 1`) with a non-empty
    /// removed set of current members; re-announcements of an already
    /// applied epoch with a consistent removed set are reported as
    /// [`ViewChangeOutcome::Duplicate`]; anything else is a
    /// [`ViewChangeOutcome::Conflict`].
    pub fn apply(&mut self, epoch: u32, removed: &[ThreadId]) -> ViewChangeOutcome {
        if epoch <= self.epoch {
            // Already at (or past) this epoch: consistent iff everything
            // the announcement removes is gone from the view.
            return if removed.iter().all(|t| !self.contains(*t)) {
                ViewChangeOutcome::Duplicate
            } else {
                ViewChangeOutcome::Conflict {
                    reason: format!(
                        "stale epoch {epoch} (current {}) removes live members {removed:?}",
                        self.epoch
                    ),
                }
            };
        }
        if epoch != self.epoch + 1 {
            return ViewChangeOutcome::Conflict {
                reason: format!("epoch {epoch} skips ahead of current epoch {}", self.epoch),
            };
        }
        if removed.is_empty() {
            return ViewChangeOutcome::Conflict {
                reason: format!("epoch {epoch} removes nobody"),
            };
        }
        let mut actually: Vec<ThreadId> = Vec::with_capacity(removed.len());
        for &t in removed {
            if !self.contains(t) {
                return ViewChangeOutcome::Conflict {
                    reason: format!("epoch {epoch} removes {t}, not a live member"),
                };
            }
            actually.push(t);
        }
        actually.sort_unstable();
        actually.dedup();
        self.members.retain(|t| !actually.contains(t));
        self.removed.extend_from_slice(&actually);
        self.removed.sort_unstable();
        self.epoch = epoch;
        ViewChangeOutcome::Applied { removed: actually }
    }

    /// Applies a rejoin view change: advance to `epoch`, re-admitting
    /// `thread` — a previously removed member that restarted and caught
    /// up (epoch-numbered rejoin).
    ///
    /// Accepts exactly the next epoch (`self.epoch() + 1`) with a thread
    /// from the removed set; a re-announcement of an already applied
    /// rejoin (the thread is live again at or below `epoch`) is a
    /// [`ViewChangeOutcome::Duplicate`]; anything else is a
    /// [`ViewChangeOutcome::Conflict`]. The returned `Applied.removed` is
    /// empty — rejoin removes nobody.
    pub fn rejoin(&mut self, epoch: u32, thread: ThreadId) -> ViewChangeOutcome {
        if epoch <= self.epoch {
            return if self.contains(thread) {
                ViewChangeOutcome::Duplicate
            } else {
                ViewChangeOutcome::Conflict {
                    reason: format!(
                        "stale rejoin epoch {epoch} (current {}) for non-member {thread}",
                        self.epoch
                    ),
                }
            };
        }
        if epoch != self.epoch + 1 {
            return ViewChangeOutcome::Conflict {
                reason: format!(
                    "rejoin epoch {epoch} skips ahead of current epoch {}",
                    self.epoch
                ),
            };
        }
        if self.contains(thread) {
            return ViewChangeOutcome::Conflict {
                reason: format!("rejoin epoch {epoch} re-admits live member {thread}"),
            };
        }
        if !self.removed.contains(&thread) {
            return ViewChangeOutcome::Conflict {
                reason: format!("rejoin epoch {epoch} re-admits {thread}, never a member"),
            };
        }
        self.removed.retain(|t| *t != thread);
        self.members.push(thread);
        self.members.sort_unstable();
        self.epoch = epoch;
        ViewChangeOutcome::Applied { removed: vec![] }
    }

    /// Fast-forwards the view to an announcer's `(epoch,
    /// cumulative_removed)` pair — the membership data a resolver
    /// piggybacks on its `Commit` message. Unlike [`MembershipView::apply`]
    /// (which takes one epoch's *step*), `cumulative_removed` is everything
    /// the announcer's view has removed since epoch 0, so this can jump
    /// over view changes this participant never saw individually.
    pub fn sync_to(&mut self, epoch: u32, cumulative_removed: &[ThreadId]) -> ViewChangeOutcome {
        if epoch <= self.epoch {
            return if cumulative_removed.iter().all(|t| !self.contains(*t)) {
                ViewChangeOutcome::Duplicate
            } else {
                ViewChangeOutcome::Conflict {
                    reason: format!(
                        "stale epoch {epoch} (current {}) still lists live members {cumulative_removed:?}",
                        self.epoch
                    ),
                }
            };
        }
        let consistent = cumulative_removed
            .iter()
            .all(|t| self.contains(*t) || self.removed.contains(t))
            && self.removed.iter().all(|t| cumulative_removed.contains(t));
        let fresh: Vec<ThreadId> = cumulative_removed
            .iter()
            .copied()
            .filter(|t| self.contains(*t))
            .collect();
        if consistent && fresh.is_empty() {
            // The announcer is ahead on epoch numbering but its member set
            // equals ours (it applied in several steps what we applied in
            // fewer, or vice versa). Nothing to remove; keep our epoch —
            // step announcements for epochs we collapsed are recognised as
            // duplicates by their removed sets.
            return ViewChangeOutcome::Duplicate;
        }
        if !consistent {
            return ViewChangeOutcome::Conflict {
                reason: format!(
                    "epoch {epoch} with cumulative removals {cumulative_removed:?} \
                     is inconsistent with local view {self}"
                ),
            };
        }
        let mut fresh = fresh;
        fresh.sort_unstable();
        fresh.dedup();
        self.members.retain(|t| !fresh.contains(t));
        self.removed.extend_from_slice(&fresh);
        self.removed.sort_unstable();
        self.epoch = epoch;
        ViewChangeOutcome::Applied { removed: fresh }
    }
}

impl fmt::Display for MembershipView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}{{", self.epoch)?;
        for (i, t) in self.members.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId::new(n)
    }

    #[test]
    fn initial_view_is_sorted_full_group_at_epoch_zero() {
        let view = MembershipView::new(vec![t(3), t(1), t(2), t(1)]);
        assert_eq!(view.members(), &[t(1), t(2), t(3)]);
        assert_eq!(view.epoch(), 0);
        assert!(!view.changed());
        assert!(view.removed().is_empty());
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }

    #[test]
    fn apply_removes_members_and_bumps_epoch() {
        let mut view = MembershipView::new(vec![t(0), t(1), t(2), t(3)]);
        let outcome = view.apply(1, &[t(2)]);
        assert_eq!(
            outcome,
            ViewChangeOutcome::Applied {
                removed: vec![t(2)]
            }
        );
        assert_eq!(view.members(), &[t(0), t(1), t(3)]);
        assert_eq!(view.removed(), &[t(2)]);
        assert!(view.changed());
        // A second change removes another member.
        let outcome = view.apply(2, &[t(0)]);
        assert!(matches!(outcome, ViewChangeOutcome::Applied { .. }));
        assert_eq!(view.members(), &[t(1), t(3)]);
        assert_eq!(view.removed(), &[t(0), t(2)]);
        assert_eq!(view.epoch(), 2);
    }

    #[test]
    fn duplicate_announcements_are_idempotent() {
        let mut view = MembershipView::new(vec![t(0), t(1), t(2)]);
        view.apply(1, &[t(1)]);
        assert_eq!(view.apply(1, &[t(1)]), ViewChangeOutcome::Duplicate);
        assert_eq!(view.members(), &[t(0), t(2)]);
        assert_eq!(view.epoch(), 1);
    }

    #[test]
    fn conflicts_are_detected() {
        let mut view = MembershipView::new(vec![t(0), t(1), t(2)]);
        view.apply(1, &[t(1)]);
        // Same epoch, different removed set: the announcer suspects a
        // member this view still believes live.
        assert!(matches!(
            view.apply(1, &[t(2)]),
            ViewChangeOutcome::Conflict { .. }
        ));
        // Skipping an epoch.
        assert!(matches!(
            view.apply(3, &[t(2)]),
            ViewChangeOutcome::Conflict { .. }
        ));
        // Removing a non-member.
        assert!(matches!(
            view.apply(2, &[t(5)]),
            ViewChangeOutcome::Conflict { .. }
        ));
        // Removing nobody.
        assert!(matches!(
            view.apply(2, &[]),
            ViewChangeOutcome::Conflict { .. }
        ));
        assert_eq!(view.epoch(), 1, "conflicts leave the view untouched");
    }

    #[test]
    fn sync_to_jumps_and_tolerates_equal_sets_with_skewed_epochs() {
        // Jump: a commit's cumulative view lands exactly.
        let mut view = MembershipView::new(vec![t(0), t(1), t(2), t(3)]);
        let outcome = view.sync_to(2, &[t(1), t(2)]);
        assert!(matches!(outcome, ViewChangeOutcome::Applied { .. }));
        assert_eq!(view.members(), &[t(0), t(3)]);
        assert_eq!(view.epoch(), 2);
        // Equal member sets under different epoch numbering (the announcer
        // applied in more steps): nothing fresh, not a conflict.
        let mut view = MembershipView::new(vec![t(0), t(1), t(2)]);
        view.apply(1, &[t(1), t(2)]);
        assert_eq!(view.sync_to(2, &[t(1), t(2)]), ViewChangeOutcome::Duplicate);
        assert_eq!(view.epoch(), 1, "our numbering is kept");
        // Genuinely inconsistent histories still conflict.
        let mut view = MembershipView::new(vec![t(0), t(1)]);
        view.apply(1, &[t(1)]);
        assert!(matches!(
            view.sync_to(2, &[t(0)]),
            ViewChangeOutcome::Conflict { .. }
        ));
    }

    #[test]
    fn rejoin_readmits_a_removed_member_at_the_next_epoch() {
        let mut view = MembershipView::new(vec![t(0), t(1), t(2)]);
        view.apply(1, &[t(1)]);
        let outcome = view.rejoin(2, t(1));
        assert_eq!(outcome, ViewChangeOutcome::Applied { removed: vec![] });
        assert_eq!(view.members(), &[t(0), t(1), t(2)]);
        assert!(view.removed().is_empty());
        assert_eq!(view.epoch(), 2);
        // A re-announcement of the applied rejoin is a duplicate.
        assert_eq!(view.rejoin(2, t(1)), ViewChangeOutcome::Duplicate);
        // The member can crash again at a later epoch.
        assert!(matches!(
            view.apply(3, &[t(1)]),
            ViewChangeOutcome::Applied { .. }
        ));
        assert_eq!(view.members(), &[t(0), t(2)]);
    }

    #[test]
    fn rejoin_conflicts_are_detected() {
        let mut view = MembershipView::new(vec![t(0), t(1), t(2)]);
        view.apply(1, &[t(1)]);
        // Skipping an epoch.
        assert!(matches!(
            view.rejoin(3, t(1)),
            ViewChangeOutcome::Conflict { .. }
        ));
        // Re-admitting a live member.
        assert!(matches!(
            view.rejoin(2, t(0)),
            ViewChangeOutcome::Conflict { .. }
        ));
        // Re-admitting a thread that was never part of the group.
        assert!(matches!(
            view.rejoin(2, t(9)),
            ViewChangeOutcome::Conflict { .. }
        ));
        // A stale rejoin for a thread still removed.
        assert!(matches!(
            view.rejoin(1, t(1)),
            ViewChangeOutcome::Conflict { .. }
        ));
        assert_eq!(view.epoch(), 1, "conflicts leave the view untouched");
    }

    #[test]
    fn display_is_compact() {
        let mut view = MembershipView::new(vec![t(0), t(1), t(2)]);
        assert_eq!(view.to_string(), "v0{T0,T1,T2}");
        view.apply(1, &[t(1)]);
        assert_eq!(view.to_string(), "v1{T0,T2}");
    }
}
