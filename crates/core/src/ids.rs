//! Identifiers for the entities of the CA-action model.
//!
//! The resolution algorithm of §3.3 requires that "each thread \[has\] a unique
//! identifier and all threads are ordered"; the thread with the biggest
//! identifier among those in the exceptional state performs resolution.
//! [`ThreadId`] therefore carries a total order. Actions, roles and network
//! partitions get their own newtypes so the distinct id spaces cannot be
//! confused ([C-NEWTYPE]).

use std::fmt;

macro_rules! numeric_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from its raw index.
            #[must_use]
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw index behind this id.
            #[must_use]
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// The raw index as a `usize`, convenient for table lookups.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

numeric_id!(
    /// Identifier of an execution thread (a participant), totally ordered.
    ///
    /// The order is load-bearing: when several participants are in the
    /// exceptional state, the one with the *largest* `ThreadId` resolves the
    /// concurrently raised exceptions (§3.3.2).
    ///
    /// # Examples
    ///
    /// ```
    /// use caa_core::ids::ThreadId;
    ///
    /// let resolver = [ThreadId::new(0), ThreadId::new(2), ThreadId::new(1)]
    ///     .into_iter()
    ///     .max()
    ///     .unwrap();
    /// assert_eq!(resolver, ThreadId::new(2));
    /// ```
    ThreadId,
    "T"
);

numeric_id!(
    /// Identifier of a network partition (a node in the distributed system).
    ///
    /// In the paper's Ada 95 prototype, "each participating thread is located
    /// in its own node (or partition)" (§5.1); the runtime preserves that
    /// mapping by default but permits co-located threads.
    PartitionId,
    "node"
);

numeric_id!(
    /// Index of a role within a CA action definition.
    ///
    /// Roles are the named slots of an action interface; a group of threads
    /// performs an action by binding one thread per role (§3.1).
    RoleId,
    "role"
);

/// Identifier of one *instance* of a CA action.
///
/// Nested action instances receive fresh ids; the nesting relationship is
/// tracked by the runtime's action stack (the paper's `SA` stack), not by the
/// id itself. Ids carry the nesting `depth` so that a participant can decide
/// whether a message concerns its active action or an enclosing one without a
/// directory lookup.
///
/// # Examples
///
/// ```
/// use caa_core::ids::ActionId;
///
/// let outer = ActionId::top_level(7);
/// let inner = ActionId::nested(8, &outer);
/// assert!(inner.depth() > outer.depth());
/// assert_ne!(inner, outer);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId {
    serial: u64,
    depth: u32,
}

impl ActionId {
    /// Creates the id of a top-level (outermost) action instance.
    #[must_use]
    pub const fn top_level(serial: u64) -> Self {
        ActionId { serial, depth: 0 }
    }

    /// Creates the id of an action instance nested directly inside `parent`.
    #[must_use]
    pub const fn nested(serial: u64, parent: &ActionId) -> Self {
        ActionId {
            serial,
            depth: parent.depth + 1,
        }
    }

    /// Creates an action id at an explicit nesting depth. Runtimes that
    /// encode definition/instance information in `serial` use this to mint
    /// ids without holding the parent id.
    #[must_use]
    pub const fn with_depth(serial: u64, depth: u32) -> Self {
        ActionId { serial, depth }
    }

    /// The globally unique serial number of this instance.
    #[must_use]
    pub const fn serial(self) -> u64 {
        self.serial
    }

    /// Nesting depth: 0 for a top-level action, parent depth + 1 otherwise.
    #[must_use]
    pub const fn depth(self) -> u32 {
        self.depth
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}(d{})", self.serial, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_totally_ordered() {
        let mut ids = vec![ThreadId::new(5), ThreadId::new(1), ThreadId::new(3)];
        ids.sort();
        assert_eq!(
            ids,
            vec![ThreadId::new(1), ThreadId::new(3), ThreadId::new(5)]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(ThreadId::new(2).to_string(), "T2");
        assert_eq!(PartitionId::new(0).to_string(), "node0");
        assert_eq!(RoleId::new(1).to_string(), "role1");
        assert_eq!(ActionId::top_level(3).to_string(), "A3(d0)");
    }

    #[test]
    fn conversions_roundtrip() {
        let t = ThreadId::from(9u32);
        assert_eq!(u32::from(t), 9);
        assert_eq!(t.index(), 9);
    }

    #[test]
    fn nested_action_ids_track_depth() {
        let outer = ActionId::top_level(1);
        let mid = ActionId::nested(2, &outer);
        let inner = ActionId::nested(3, &mid);
        assert_eq!(outer.depth(), 0);
        assert_eq!(mid.depth(), 1);
        assert_eq!(inner.depth(), 2);
        assert_eq!(inner.serial(), 3);
    }
}
