//! Participant states of the resolution algorithm (§3.3.1).
//!
//! During coordinated exception handling a participating thread `Ti` is in
//! one of three states: **N**ormal, e**X**ceptional (an exception was raised
//! in `Ti`), or **S**uspended (`Ti` halted its normal computation because of
//! exceptions raised in other threads).

use std::fmt;

/// State of a participating thread during coordinated exception handling.
///
/// # Examples
///
/// ```
/// use caa_core::state::ParticipantState;
///
/// let s = ParticipantState::Normal;
/// assert!(!s.is_halted());
/// assert!(ParticipantState::Exceptional.is_halted());
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParticipantState {
    /// `N`: executing its normal program function.
    #[default]
    Normal,
    /// `X`: an exception was raised in this thread.
    Exceptional,
    /// `S`: this thread stopped its normal computation because of exceptions
    /// raised in other threads.
    Suspended,
}

impl ParticipantState {
    /// Whether normal computation has stopped (state `X` or `S`).
    #[must_use]
    pub fn is_halted(self) -> bool {
        !matches!(self, ParticipantState::Normal)
    }

    /// Whether this thread itself raised an exception (state `X`).
    ///
    /// Only `X`-state threads are candidates for performing resolution; the
    /// one with the biggest [`ThreadId`](crate::ids::ThreadId) wins (§3.3.2).
    #[must_use]
    pub fn is_exceptional(self) -> bool {
        matches!(self, ParticipantState::Exceptional)
    }

    /// One-letter code used in the paper (`N`, `X`, `S`).
    #[must_use]
    pub fn code(self) -> char {
        match self {
            ParticipantState::Normal => 'N',
            ParticipantState::Exceptional => 'X',
            ParticipantState::Suspended => 'S',
        }
    }
}

impl fmt::Display for ParticipantState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_normal() {
        assert_eq!(ParticipantState::default(), ParticipantState::Normal);
    }

    #[test]
    fn halted_states() {
        assert!(!ParticipantState::Normal.is_halted());
        assert!(ParticipantState::Exceptional.is_halted());
        assert!(ParticipantState::Suspended.is_halted());
        assert!(ParticipantState::Exceptional.is_exceptional());
        assert!(!ParticipantState::Suspended.is_exceptional());
    }

    #[test]
    fn codes_match_paper_notation() {
        assert_eq!(ParticipantState::Normal.to_string(), "N");
        assert_eq!(ParticipantState::Exceptional.to_string(), "X");
        assert_eq!(ParticipantState::Suspended.to_string(), "S");
    }
}
