//! Exceptions of the CA-action model (§3.1).
//!
//! For a given CA action two sets of exceptions exist: the *internal*
//! exceptions `e = {e1, e2, …}` declared with the action and handled by its
//! roles, and the *interface* exceptions `ε = {ε1, ε2, …}` that can be
//! signalled to the enclosing action. Two interface exceptions are
//! pre-defined: the **undo** exception `µ` (the action aborted and all of its
//! effects were undone) and the **failure** exception `ƒ` (the action aborted
//! but its effects may not have been undone completely). Every exception
//! graph is rooted at the **universal** exception, raised when concurrently
//! raised exceptions cannot be resolved to anything more specific.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use crate::ids::ThreadId;

/// Reserved name of the undo exception `µ`.
pub const UNDO_NAME: &str = "__undo";
/// Reserved name of the failure exception `ƒ`.
pub const FAILURE_NAME: &str = "__failure";
/// Reserved name of the universal exception (root of every exception graph).
pub const UNIVERSAL_NAME: &str = "__universal";
/// Reserved name of the abortion exception raised inside a nested action when
/// its enclosing action aborts it (§3.3.1).
pub const ABORTION_NAME: &str = "__abortion";
/// Reserved name of the crash exception synthesized on behalf of a
/// presumed-crashed participant when a bounded resolution wait expires (the
/// membership extension's presume-ƒ rule: a participant crash is "just
/// another exception" to be resolved concurrently).
pub const CRASH_NAME: &str = "__crash";

/// An interned exception name.
///
/// Exception identity is by name, matching the paper's model where "the types
/// common to all participating threads … [include] names of all the
/// exceptions" (§5.1). Cloning is cheap (reference-counted). The `Ord`
/// implementation (lexicographic) gives protocols a deterministic tie-break.
///
/// # Examples
///
/// ```
/// use caa_core::exception::ExceptionId;
///
/// let vm_stop = ExceptionId::new("vm_stop");
/// assert_eq!(vm_stop.name(), "vm_stop");
/// assert!(!vm_stop.is_special());
/// assert!(ExceptionId::undo().is_undo());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExceptionId(Arc<str>);

impl ExceptionId {
    /// Creates an exception id with the given name.
    ///
    /// Names starting with `__` are reserved for the pre-defined exceptions;
    /// use the dedicated constructors ([`ExceptionId::undo`] etc.) for those.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        ExceptionId(Arc::from(name.as_ref()))
    }

    /// The undo exception `µ`.
    #[must_use]
    pub fn undo() -> Self {
        ExceptionId::new(UNDO_NAME)
    }

    /// The failure exception `ƒ`.
    #[must_use]
    pub fn failure() -> Self {
        ExceptionId::new(FAILURE_NAME)
    }

    /// The universal exception, root of every exception graph (§3.2).
    #[must_use]
    pub fn universal() -> Self {
        ExceptionId::new(UNIVERSAL_NAME)
    }

    /// The abortion exception used to abort a nested action (§3.3.1).
    #[must_use]
    pub fn abortion() -> Self {
        ExceptionId::new(ABORTION_NAME)
    }

    /// The crash exception synthesized for a presumed-crashed participant
    /// by the membership extension's bounded resolution wait. Exception
    /// graphs that do not declare it resolve it through the universal root.
    #[must_use]
    pub fn crash() -> Self {
        ExceptionId::new(CRASH_NAME)
    }

    /// The exception's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Whether this is the undo exception `µ`.
    #[must_use]
    pub fn is_undo(&self) -> bool {
        self.name() == UNDO_NAME
    }

    /// Whether this is the failure exception `ƒ`.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        self.name() == FAILURE_NAME
    }

    /// Whether this is the universal exception.
    #[must_use]
    pub fn is_universal(&self) -> bool {
        self.name() == UNIVERSAL_NAME
    }

    /// Whether this is the abortion exception.
    #[must_use]
    pub fn is_abortion(&self) -> bool {
        self.name() == ABORTION_NAME
    }

    /// Whether this is the synthesized crash exception.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        self.name() == CRASH_NAME
    }

    /// Whether this is one of the pre-defined exceptions (µ, ƒ, universal,
    /// abortion or crash).
    #[must_use]
    pub fn is_special(&self) -> bool {
        self.is_undo()
            || self.is_failure()
            || self.is_universal()
            || self.is_abortion()
            || self.is_crash()
    }
}

impl fmt::Display for ExceptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            UNDO_NAME => f.write_str("µ"),
            FAILURE_NAME => f.write_str("ƒ"),
            UNIVERSAL_NAME => f.write_str("universal"),
            ABORTION_NAME => f.write_str("abortion"),
            CRASH_NAME => f.write_str("crash"),
            other => f.write_str(other),
        }
    }
}

impl From<&str> for ExceptionId {
    fn from(name: &str) -> Self {
        ExceptionId::new(name)
    }
}

impl From<String> for ExceptionId {
    fn from(name: String) -> Self {
        ExceptionId(Arc::from(name.as_str()))
    }
}

impl Borrow<str> for ExceptionId {
    fn borrow(&self) -> &str {
        self.name()
    }
}

impl AsRef<str> for ExceptionId {
    fn as_ref(&self) -> &str {
        self.name()
    }
}

/// A raised exception: an [`ExceptionId`] plus diagnostic context.
///
/// The coordination protocols operate on the id alone; the origin and detail
/// travel with it so handlers and logs can explain *why* recovery started.
///
/// # Examples
///
/// ```
/// use caa_core::exception::Exception;
/// use caa_core::ids::ThreadId;
///
/// let e = Exception::new("vm_stop")
///     .with_origin(ThreadId::new(1))
///     .with_detail("vertical motor stalled at 80%");
/// assert_eq!(e.id().name(), "vm_stop");
/// assert_eq!(e.origin(), Some(ThreadId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Exception {
    id: ExceptionId,
    origin: Option<ThreadId>,
    /// Interned so cloning an exception — which the resolution algorithm
    /// does once per broadcast recipient — never copies the text.
    detail: Option<Arc<str>>,
}

impl Exception {
    /// Creates an exception with the given id and no context.
    #[must_use]
    pub fn new(id: impl Into<ExceptionId>) -> Self {
        Exception {
            id: id.into(),
            origin: None,
            detail: None,
        }
    }

    /// Records which thread raised this exception.
    #[must_use]
    pub fn with_origin(mut self, origin: ThreadId) -> Self {
        self.origin = Some(origin);
        self
    }

    /// Attaches a human-readable explanation.
    #[must_use]
    pub fn with_detail(mut self, detail: impl AsRef<str>) -> Self {
        self.detail = Some(Arc::from(detail.as_ref()));
        self
    }

    /// The exception's identity.
    #[must_use]
    pub fn id(&self) -> &ExceptionId {
        &self.id
    }

    /// The thread that raised this exception, if recorded.
    #[must_use]
    pub fn origin(&self) -> Option<ThreadId> {
        self.origin
    }

    /// The attached explanation, if any.
    #[must_use]
    pub fn detail(&self) -> Option<&str> {
        self.detail.as_deref()
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)?;
        if let Some(origin) = self.origin {
            write!(f, " (raised by {origin})")?;
        }
        if let Some(detail) = &self.detail {
            write!(f, ": {detail}")?;
        }
        Ok(())
    }
}

impl From<ExceptionId> for Exception {
    fn from(id: ExceptionId) -> Self {
        Exception::new(id)
    }
}

/// What one participant intends to signal to the enclosing action after
/// exception handling (§3.4): `ε ∈ {φ, ε1, ε2, …, µ, ƒ}`.
///
/// # Examples
///
/// ```
/// use caa_core::exception::{ExceptionId, Signal};
///
/// let s = Signal::Exception(ExceptionId::new("L_PLATE"));
/// assert!(!s.is_none());
/// assert_eq!(Signal::Undo, Signal::from(ExceptionId::undo()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Signal {
    /// `φ`: the participant has nothing to signal; the action completed
    /// successfully from its point of view.
    None,
    /// An ordinary interface exception `ε`.
    Exception(ExceptionId),
    /// The undo exception `µ`: all effects of the action must be undone.
    Undo,
    /// The failure exception `ƒ`: the action aborted and its effects may not
    /// have been undone completely.
    Failure,
}

impl Signal {
    /// Whether this is `φ` (nothing to signal).
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, Signal::None)
    }

    /// Whether this signal forces coordination (µ or ƒ, §3.4).
    #[must_use]
    pub fn needs_coordination(&self) -> bool {
        matches!(self, Signal::Undo | Signal::Failure)
    }

    /// The exception id this signal delivers to the enclosing action, if any.
    #[must_use]
    pub fn exception_id(&self) -> Option<ExceptionId> {
        match self {
            Signal::None => None,
            Signal::Exception(id) => Some(id.clone()),
            Signal::Undo => Some(ExceptionId::undo()),
            Signal::Failure => Some(ExceptionId::failure()),
        }
    }
}

impl From<ExceptionId> for Signal {
    fn from(id: ExceptionId) -> Self {
        if id.is_undo() {
            Signal::Undo
        } else if id.is_failure() {
            Signal::Failure
        } else {
            Signal::Exception(id)
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::None => f.write_str("φ"),
            Signal::Exception(id) => write!(f, "{id}"),
            Signal::Undo => f.write_str("µ"),
            Signal::Failure => f.write_str("ƒ"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_exceptions_are_recognised() {
        assert!(ExceptionId::undo().is_undo());
        assert!(ExceptionId::failure().is_failure());
        assert!(ExceptionId::universal().is_universal());
        assert!(ExceptionId::abortion().is_abortion());
        for special in [
            ExceptionId::undo(),
            ExceptionId::failure(),
            ExceptionId::universal(),
            ExceptionId::abortion(),
        ] {
            assert!(special.is_special(), "{special} should be special");
        }
        assert!(!ExceptionId::new("vm_stop").is_special());
    }

    #[test]
    fn ids_compare_by_name() {
        let a = ExceptionId::new("a");
        let b = ExceptionId::new("b");
        assert!(a < b);
        assert_eq!(a, ExceptionId::new("a"));
    }

    #[test]
    fn display_uses_greek_letters_for_specials() {
        assert_eq!(ExceptionId::undo().to_string(), "µ");
        assert_eq!(ExceptionId::failure().to_string(), "ƒ");
        assert_eq!(ExceptionId::new("s_stuck").to_string(), "s_stuck");
    }

    #[test]
    fn exception_carries_context() {
        let e = Exception::new("l_plate")
            .with_origin(ThreadId::new(3))
            .with_detail("plate lost between table and press");
        assert_eq!(e.id(), &ExceptionId::new("l_plate"));
        assert_eq!(e.origin(), Some(ThreadId::new(3)));
        assert_eq!(e.detail(), Some("plate lost between table and press"));
        let displayed = e.to_string();
        assert!(displayed.contains("l_plate"));
        assert!(displayed.contains("T3"));
    }

    #[test]
    fn signal_from_exception_id_maps_specials() {
        assert_eq!(Signal::from(ExceptionId::undo()), Signal::Undo);
        assert_eq!(Signal::from(ExceptionId::failure()), Signal::Failure);
        assert_eq!(
            Signal::from(ExceptionId::new("T_SENSOR")),
            Signal::Exception(ExceptionId::new("T_SENSOR"))
        );
    }

    #[test]
    fn signal_exception_ids() {
        assert_eq!(Signal::None.exception_id(), None);
        assert_eq!(Signal::Undo.exception_id(), Some(ExceptionId::undo()));
        assert_eq!(Signal::Failure.exception_id(), Some(ExceptionId::failure()));
        assert!(Signal::None.is_none());
        assert!(Signal::Undo.needs_coordination());
        assert!(Signal::Failure.needs_coordination());
        assert!(!Signal::Exception(ExceptionId::new("x")).needs_coordination());
    }

    #[test]
    fn id_borrows_as_str() {
        use std::collections::HashSet;
        let mut set: HashSet<ExceptionId> = HashSet::new();
        set.insert(ExceptionId::new("rm_stop"));
        // Borrow<str> lets us query by &str without allocating.
        assert!(set.contains("rm_stop"));
        assert_eq!(ExceptionId::new("rm_stop").as_ref(), "rm_stop");
    }
}
