//! Automatic generation of exception graphs (§3.2).
//!
//! "In general, an n-level exception graph can be defined with n primitive
//! exceptions at level 0. The first level can contain up to n × (n – 1)/2
//! resolving exception nodes. Level two could consist of up to
//! n × (n – 1)(n – 2)/6 nodes, and so on. … This general method for defining
//! exception graphs makes the automatic generation of an exception graph
//! possible."
//!
//! [`conjunction_lattice`] materialises exactly that construction: level *k*
//! holds one resolving node per (k+1)-subset of the primitives, named by
//! joining the sorted member names with `∩`. A `max_combo` cut-off yields
//! the partial graphs of simplification rule 3, where larger combinations
//! fall through to the universal exception.

use caa_core::exception::ExceptionId;

use crate::error::GraphError;
use crate::graph::{ExceptionGraph, ExceptionGraphBuilder};

/// Canonical name of the conjunction of a set of primitive exceptions:
/// the sorted member names joined with `∩`.
///
/// # Examples
///
/// ```
/// use caa_exgraph::generate::conjunction_name;
/// use caa_core::exception::ExceptionId;
///
/// let name = conjunction_name([
///     ExceptionId::new("rm_stop"),
///     ExceptionId::new("vm_stop"),
/// ]);
/// assert_eq!(name.name(), "rm_stop∩vm_stop");
/// ```
#[must_use]
pub fn conjunction_name<I>(members: I) -> ExceptionId
where
    I: IntoIterator<Item = ExceptionId>,
{
    let mut names: Vec<String> = members.into_iter().map(|id| id.name().to_owned()).collect();
    names.sort();
    names.dedup();
    ExceptionId::new(names.join("∩"))
}

/// Generates the full conjunction lattice over `primitives`, materialising
/// combinations of size 2 through `max_combo` (inclusive).
///
/// With `max_combo == primitives.len()` this is exactly the n-level graph of
/// §3.2 (Figure 3 for n = 3). Smaller values produce partial graphs: any
/// concurrently raised set larger than `max_combo` resolves to the universal
/// exception, matching the paper's Move_Loaded_Table graph which permits "no
/// more than two exceptions concurrently raised".
///
/// # Errors
///
/// [`GraphError::Empty`] when `primitives` is empty, or
/// [`GraphError::DuplicateNode`] when it contains duplicates.
///
/// # Examples
///
/// ```
/// use caa_exgraph::generate::conjunction_lattice;
/// use caa_core::exception::ExceptionId;
///
/// # fn main() -> Result<(), caa_exgraph::GraphError> {
/// let prims: Vec<ExceptionId> = ["e1", "e2", "e3"].map(ExceptionId::new).into();
/// let g = conjunction_lattice(&prims, 3)?;
/// // 3 primitives + 3 pairs + 1 triple + universal.
/// assert_eq!(g.len(), 8);
/// assert_eq!(
///     g.resolve(&prims),
///     ExceptionId::new("e1∩e2∩e3"),
/// );
/// # Ok(())
/// # }
/// ```
pub fn conjunction_lattice(
    primitives: &[ExceptionId],
    max_combo: usize,
) -> Result<ExceptionGraph, GraphError> {
    let mut builder = ExceptionGraphBuilder::new();
    for p in primitives {
        builder = builder.exception(p.clone());
    }
    let n = primitives.len();
    let max_combo = max_combo.min(n);
    // Materialise levels bottom-up; at each size k, a combination covers its
    // (k-1)-sized sub-combinations.
    let mut previous: Vec<(Vec<usize>, ExceptionId)> =
        (0..n).map(|i| (vec![i], primitives[i].clone())).collect();
    for size in 2..=max_combo {
        let combos = combinations(n, size);
        let mut current = Vec::with_capacity(combos.len());
        for combo in combos {
            let id = conjunction_name(combo.iter().map(|&i| primitives[i].clone()));
            let covered: Vec<ExceptionId> = previous
                .iter()
                .filter(|(sub, _)| sub.iter().all(|i| combo.contains(i)))
                .map(|(_, id)| id.clone())
                .collect();
            builder = builder.resolves(id.clone(), covered);
            current.push((combo, id));
        }
        previous = current;
    }
    builder.build()
}

/// All `size`-subsets of `0..n` in lexicographic order.
fn combinations(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut combo: Vec<usize> = (0..size).collect();
    if size == 0 || size > n {
        return out;
    }
    loop {
        out.push(combo.clone());
        // Advance the rightmost index that can still move.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if combo[i] != i + n - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        combo[i] += 1;
        for j in i + 1..size {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

/// Number of nodes §3.2 predicts at combination level `k` (combinations of
/// size `k + 1` out of `n` primitives): `C(n, k+1)`.
#[must_use]
pub fn predicted_level_size(n: usize, level: usize) -> usize {
    binomial(n, level + 1)
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1usize;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prims(n: usize) -> Vec<ExceptionId> {
        (1..=n).map(|i| ExceptionId::new(format!("e{i}"))).collect()
    }

    #[test]
    fn combinations_enumerate_lexicographically() {
        assert_eq!(
            combinations(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
        assert!(combinations(2, 3).is_empty());
        assert!(combinations(3, 0).is_empty());
    }

    #[test]
    fn binomial_matches_known_values() {
        assert_eq!(binomial(3, 2), 3);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(2, 5), 0);
    }

    #[test]
    fn full_lattice_has_paper_level_sizes() {
        // §3.2: level 1 holds n(n-1)/2 nodes, level 2 holds n(n-1)(n-2)/6.
        let n = 5;
        let g = conjunction_lattice(&prims(n), n).unwrap();
        for level in 1..n {
            let count = g
                .iter()
                .filter(|id| g.level(id) == Some(level) && !id.is_universal())
                .count();
            assert_eq!(
                count,
                predicted_level_size(n, level),
                "level {level} of the n={n} lattice"
            );
        }
        assert_eq!(predicted_level_size(n, 1), n * (n - 1) / 2);
        assert_eq!(predicted_level_size(n, 2), n * (n - 1) * (n - 2) / 6);
        // Level n-1 has exactly one node covering all primitives.
        assert_eq!(predicted_level_size(n, n - 1), 1);
    }

    #[test]
    fn lattice_resolves_pairs_and_triples() {
        let p = prims(4);
        let g = conjunction_lattice(&p, 4).unwrap();
        assert_eq!(
            g.resolve(&[p[0].clone(), p[2].clone()]),
            ExceptionId::new("e1∩e3")
        );
        assert_eq!(
            g.resolve(&[p[3].clone(), p[1].clone(), p[0].clone()]),
            ExceptionId::new("e1∩e2∩e4")
        );
        assert_eq!(g.resolve(&p), ExceptionId::new("e1∩e2∩e3∩e4"));
    }

    #[test]
    fn truncated_lattice_falls_back_to_universal() {
        // Figure 7's policy: "no more than two exceptions concurrently
        // raised"; three or more resolve to the universal exception.
        let p = prims(4);
        let g = conjunction_lattice(&p, 2).unwrap();
        assert_eq!(
            g.resolve(&[p[0].clone(), p[1].clone()]),
            ExceptionId::new("e1∩e2")
        );
        assert!(g
            .resolve(&[p[0].clone(), p[1].clone(), p[2].clone()])
            .is_universal());
    }

    #[test]
    fn max_combo_is_clamped_to_n() {
        let p = prims(3);
        let clamped = conjunction_lattice(&p, 99).unwrap();
        let exact = conjunction_lattice(&p, 3).unwrap();
        assert_eq!(clamped, exact);
    }

    #[test]
    fn empty_primitives_is_an_error() {
        assert_eq!(conjunction_lattice(&[], 2).unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn duplicate_primitives_are_an_error() {
        let p = vec![ExceptionId::new("x"), ExceptionId::new("x")];
        assert!(matches!(
            conjunction_lattice(&p, 2).unwrap_err(),
            GraphError::DuplicateNode(_)
        ));
    }

    #[test]
    fn conjunction_name_sorts_and_dedups() {
        let name = conjunction_name([
            ExceptionId::new("b"),
            ExceptionId::new("a"),
            ExceptionId::new("b"),
        ]);
        assert_eq!(name.name(), "a∩b");
    }

    #[test]
    fn lattice_size_grows_with_max_combo() {
        let p = prims(6);
        let pairs_only = conjunction_lattice(&p, 2).unwrap();
        let triples = conjunction_lattice(&p, 3).unwrap();
        assert!(triples.len() > pairs_only.len());
        // n + C(n,2) + universal
        assert_eq!(pairs_only.len(), 6 + 15 + 1);
        assert_eq!(triples.len(), 6 + 15 + 20 + 1);
    }
}
