//! Graphviz (DOT) rendering of exception graphs.
//!
//! Useful for documenting an application's exception hierarchy the way the
//! paper draws Figures 3 and 7.

use std::fmt::Write as _;

use crate::graph::ExceptionGraph;

impl ExceptionGraph {
    /// Renders the graph in Graphviz DOT format.
    ///
    /// Primitive exceptions are drawn as boxes, resolving exceptions as
    /// ellipses and the universal root as a double octagon; nodes of the
    /// same level share a rank, mirroring the paper's level-layered figures.
    ///
    /// # Examples
    ///
    /// ```
    /// use caa_exgraph::ExceptionGraphBuilder;
    ///
    /// # fn main() -> Result<(), caa_exgraph::GraphError> {
    /// let g = ExceptionGraphBuilder::new()
    ///     .resolves("dual_motor_failures", ["vm_stop", "rm_stop"])
    ///     .build()?;
    /// let dot = g.to_dot();
    /// assert!(dot.starts_with("digraph exception_graph"));
    /// assert!(dot.contains("\"dual_motor_failures\" -> \"vm_stop\""));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph exception_graph {\n  rankdir=BT;\n");
        let max_level = self
            .iter()
            .filter_map(|id| self.level(id))
            .max()
            .unwrap_or(0);

        for level in 0..=max_level {
            let members: Vec<_> = self
                .iter()
                .filter(|id| self.level(id) == Some(level))
                .collect();
            if members.is_empty() {
                continue;
            }
            let _ = write!(out, "  {{ rank=same;");
            for id in &members {
                let _ = write!(out, " \"{}\";", escape(id.name()));
            }
            out.push_str(" }\n");
        }

        for id in self.iter() {
            let shape = if id.is_universal() {
                "doubleoctagon"
            } else if self.children_of(id).is_empty() {
                "box"
            } else {
                "ellipse"
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{}\"];",
                escape(id.name()),
                escape(id.as_ref()),
            );
        }

        for id in self.iter() {
            for child in self.children_of(id) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [dir=back];",
                    escape(id.name()),
                    escape(child.name()),
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::graph::ExceptionGraphBuilder;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = ExceptionGraphBuilder::new()
            .resolves("r", ["a", "b"])
            .build()
            .unwrap();
        let dot = g.to_dot();
        for name in ["\"r\"", "\"a\"", "\"b\"", "__universal"] {
            assert!(dot.contains(name), "missing {name} in:\n{dot}");
        }
        assert!(dot.contains("\"r\" -> \"a\""));
        assert!(dot.contains("\"r\" -> \"b\""));
        assert!(dot.contains("doubleoctagon"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_ranks_levels_together() {
        let g = ExceptionGraphBuilder::new()
            .resolves("r", ["a", "b"])
            .build()
            .unwrap();
        let dot = g.to_dot();
        let rank_line = dot
            .lines()
            .find(|l| l.contains("rank=same") && l.contains("\"a\""))
            .expect("primitives share a rank");
        assert!(rank_line.contains("\"b\""));
        assert!(!rank_line.contains("\"r\""));
    }

    #[test]
    fn dot_escapes_quotes() {
        let g = ExceptionGraphBuilder::new()
            .primitive("weird\"name")
            .build()
            .unwrap();
        assert!(g.to_dot().contains("weird\\\"name"));
    }
}
