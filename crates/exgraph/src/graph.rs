//! The exception graph and its resolution procedure (§3.2).
//!
//! An exception graph is a directed graph `G(E, R)` where each node is an
//! exception and each edge `(ei, ej)` makes `ei` the direct high-level
//! (parent) node of `ej`. Nodes with out-degree 0 are *primitive*
//! exceptions; interior nodes are *resolving* exceptions; the unique node
//! with in-degree 0 is the *universal* exception. When several exceptions
//! are raised concurrently, they are resolved into "the exception that is
//! the root of the smallest subtree containing all the raised exceptions".

use std::collections::HashMap;
use std::fmt;

use caa_core::exception::ExceptionId;

use crate::bitset::BitSet;
use crate::error::GraphError;

/// An immutable, validated exception graph.
///
/// Build one with [`ExceptionGraphBuilder`] (or the generators in
/// [`crate::generate`]), then answer resolution queries with
/// [`ExceptionGraph::resolve`].
///
/// Every graph contains the universal exception as its single root; the
/// builder adds it (and edges from it to otherwise-parentless nodes)
/// automatically, so partial graphs "simply cause the raising of the
/// universal exception" for combinations they do not cover.
///
/// # Examples
///
/// The three-level graph of Figure 3:
///
/// ```
/// use caa_exgraph::ExceptionGraphBuilder;
/// use caa_core::exception::ExceptionId;
///
/// # fn main() -> Result<(), caa_exgraph::GraphError> {
/// let g = ExceptionGraphBuilder::new()
///     .resolves("e1∩e2", ["e1", "e2"])
///     .resolves("e1∩e3", ["e1", "e3"])
///     .resolves("e2∩e3", ["e2", "e3"])
///     .resolves("e1∩e2∩e3", ["e1∩e2", "e1∩e3", "e2∩e3"])
///     .build()?;
///
/// let raised = [ExceptionId::new("e1"), ExceptionId::new("e2")];
/// assert_eq!(g.resolve(&raised), ExceptionId::new("e1∩e2"));
///
/// let all = [
///     ExceptionId::new("e1"),
///     ExceptionId::new("e2"),
///     ExceptionId::new("e3"),
/// ];
/// assert_eq!(g.resolve(&all), ExceptionId::new("e1∩e2∩e3"));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct ExceptionGraph {
    nodes: Vec<ExceptionId>,
    index: HashMap<ExceptionId, usize>,
    children: Vec<Vec<usize>>,
    parents: Vec<Vec<usize>>,
    /// Descendant set of each node, *including the node itself*.
    descendants: Vec<BitSet>,
    /// `descendants[i].len()`, cached: the size of the subtree rooted at `i`.
    subtree_size: Vec<usize>,
    /// Longest distance to a leaf: primitives are level 0.
    level: Vec<usize>,
    root: usize,
}

impl ExceptionGraph {
    /// The universal exception at the root of this graph.
    #[must_use]
    pub fn root(&self) -> &ExceptionId {
        &self.nodes[self.root]
    }

    /// Number of exceptions in the graph (including the universal root).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// An exception graph is never empty (it always holds the universal
    /// exception), so this always returns `false`; provided for API
    /// completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `id` is declared in this graph.
    #[must_use]
    pub fn contains(&self, id: &ExceptionId) -> bool {
        self.index.contains_key(id)
    }

    /// Iterates over all exceptions in the graph in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &ExceptionId> {
        self.nodes.iter()
    }

    /// The primitive exceptions (out-degree 0, level 0).
    pub fn primitives(&self) -> impl Iterator<Item = &ExceptionId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| self.children[*i].is_empty())
            .map(|(_, id)| id)
    }

    /// The resolving exceptions (interior nodes: neither primitive nor the
    /// universal root).
    pub fn resolving(&self) -> impl Iterator<Item = &ExceptionId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, id)| (!self.children[i].is_empty() && i != self.root).then_some(id))
    }

    /// The level of `id`: primitives are level 0; a resolving exception is
    /// one more than its highest child (§3.2's level structure).
    #[must_use]
    pub fn level(&self, id: &ExceptionId) -> Option<usize> {
        self.index.get(id).map(|&i| self.level[i])
    }

    /// Direct lower-level exceptions covered by `id`.
    #[must_use]
    pub fn children_of(&self, id: &ExceptionId) -> Vec<&ExceptionId> {
        match self.index.get(id) {
            Some(&i) => self.children[i].iter().map(|&c| &self.nodes[c]).collect(),
            None => Vec::new(),
        }
    }

    /// Direct higher-level exceptions covering `id`.
    #[must_use]
    pub fn parents_of(&self, id: &ExceptionId) -> Vec<&ExceptionId> {
        match self.index.get(id) {
            Some(&i) => self.parents[i].iter().map(|&p| &self.nodes[p]).collect(),
            None => Vec::new(),
        }
    }

    /// All exceptions in the subtree rooted at `id`, including `id` itself,
    /// in insertion order. Empty when `id` is not in the graph.
    #[must_use]
    pub fn descendants_of(&self, id: &ExceptionId) -> Vec<&ExceptionId> {
        match self.index.get(id) {
            Some(&i) => self.descendants[i].iter().map(|j| &self.nodes[j]).collect(),
            None => Vec::new(),
        }
    }

    /// Whether `high` covers `low`, i.e. `low` lies in the subtree rooted at
    /// `high`. Every exception covers itself.
    #[must_use]
    pub fn covers(&self, high: &ExceptionId, low: &ExceptionId) -> bool {
        match (self.index.get(high), self.index.get(low)) {
            (Some(&h), Some(&l)) => self.descendants[h].contains(l),
            _ => false,
        }
    }

    /// Resolves a set of concurrently raised exceptions to the root of the
    /// smallest subtree containing all of them (§3.2).
    ///
    /// Exceptions not declared in the graph — "other undefined exceptions" —
    /// "simply lead to the raising of the universal exception", as does an
    /// uncovered combination. Ties between equally small subtrees are broken
    /// by level (lower first) and then name, so resolution is deterministic
    /// and identical on every partition (§5.1 requires every partition's
    /// copy of the resolution function to pick the same handler).
    ///
    /// # Examples
    ///
    /// ```
    /// use caa_exgraph::ExceptionGraphBuilder;
    /// use caa_core::exception::ExceptionId;
    ///
    /// # fn main() -> Result<(), caa_exgraph::GraphError> {
    /// let g = ExceptionGraphBuilder::new()
    ///     .resolves("dual_motor_failures", ["vm_stop", "rm_stop"])
    ///     .build()?;
    /// let both = [ExceptionId::new("vm_stop"), ExceptionId::new("rm_stop")];
    /// assert_eq!(g.resolve(&both), ExceptionId::new("dual_motor_failures"));
    /// // A single raised exception resolves to itself.
    /// assert_eq!(g.resolve(&both[..1]), ExceptionId::new("vm_stop"));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn resolve(&self, raised: &[ExceptionId]) -> ExceptionId {
        self.resolve_detailed(raised).exception
    }

    /// Like [`ExceptionGraph::resolve`] but reports how the result was
    /// obtained.
    #[must_use]
    pub fn resolve_detailed(&self, raised: &[ExceptionId]) -> Resolution {
        let universal = || Resolution {
            exception: self.nodes[self.root].clone(),
            all_known: false,
            candidates: 0,
        };
        if raised.is_empty() {
            return universal();
        }
        let mut target = BitSet::new(self.nodes.len());
        for id in raised {
            match self.index.get(id) {
                Some(&i) => target.insert(i),
                None => return universal(),
            }
        }
        // Find the node with the smallest subtree whose descendants cover
        // every raised exception. The root always qualifies.
        let mut best: Option<usize> = None;
        let mut candidates = 0usize;
        for i in 0..self.nodes.len() {
            if !self.descendants[i].is_superset_of(&target) {
                continue;
            }
            candidates += 1;
            best = Some(match best {
                None => i,
                Some(b) => self.smaller_subtree(i, b),
            });
        }
        let chosen = best.expect("the universal root covers every declared exception");
        Resolution {
            exception: self.nodes[chosen].clone(),
            all_known: true,
            candidates,
        }
    }

    /// Deterministic comparison: smaller subtree wins, then lower level,
    /// then lexicographically smaller name.
    fn smaller_subtree(&self, a: usize, b: usize) -> usize {
        let key = |i: usize| (self.subtree_size[i], self.level[i], &self.nodes[i]);
        if key(a) < key(b) {
            a
        } else {
            b
        }
    }

    /// Returns a new graph with the interior resolving exception `id`
    /// removed (simplification rule 1 of §3.2: combinations that cannot
    /// occur concurrently need no resolving node).
    ///
    /// The removed node's children are re-attached to its parents so the
    /// cover relation stays rooted.
    ///
    /// # Errors
    ///
    /// [`GraphError::CannotRemove`] if `id` is the universal root or a
    /// primitive exception; [`GraphError::UnknownNode`] if it is not in the
    /// graph.
    pub fn without(&self, id: &ExceptionId) -> Result<ExceptionGraph, GraphError> {
        let &idx = self
            .index
            .get(id)
            .ok_or_else(|| GraphError::UnknownNode(id.clone()))?;
        if idx == self.root || self.children[idx].is_empty() {
            return Err(GraphError::CannotRemove(id.clone()));
        }
        let mut builder = ExceptionGraphBuilder::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if i != idx {
                builder = builder.exception(node.clone());
            }
        }
        for (parent, children) in self.children.iter().enumerate() {
            if parent == idx {
                continue;
            }
            for &child in children {
                if child == idx {
                    // Re-attach the removed node's children to this parent.
                    for &grandchild in &self.children[idx] {
                        builder = builder.edge_if_new(
                            self.nodes[parent].clone(),
                            self.nodes[grandchild].clone(),
                        );
                    }
                } else {
                    builder =
                        builder.edge_if_new(self.nodes[parent].clone(), self.nodes[child].clone());
                }
            }
        }
        builder.build()
    }

    /// The declarative form of this graph: its nodes and cover edges.
    #[must_use]
    pub fn to_spec(&self) -> GraphSpec {
        GraphSpec {
            nodes: self.nodes.clone(),
            edges: self
                .children
                .iter()
                .enumerate()
                .flat_map(|(p, cs)| {
                    cs.iter()
                        .map(move |&c| (self.nodes[p].clone(), self.nodes[c].clone()))
                })
                .collect(),
        }
    }

    /// Builds a graph from its declarative form.
    ///
    /// # Errors
    ///
    /// Any [`GraphError`] the builder would report for the same input.
    pub fn from_spec(spec: GraphSpec) -> Result<ExceptionGraph, GraphError> {
        let mut builder = ExceptionGraphBuilder::new();
        for node in spec.nodes {
            builder = builder.exception(node);
        }
        for (hi, lo) in spec.edges {
            builder = builder.edge(hi, lo);
        }
        builder.build()
    }
}

impl fmt::Debug for ExceptionGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExceptionGraph")
            .field("nodes", &self.nodes.len())
            .field("root", self.root())
            .field(
                "primitives",
                &self.primitives().map(ExceptionId::name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl PartialEq for ExceptionGraph {
    fn eq(&self, other: &Self) -> bool {
        self.to_spec() == other.to_spec()
    }
}

impl Eq for ExceptionGraph {}

/// Declarative description of an exception graph: nodes plus
/// `(high, low)` cover edges. Obtained from [`ExceptionGraph::to_spec`] and
/// consumed by [`ExceptionGraph::from_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// All declared exceptions.
    pub nodes: Vec<ExceptionId>,
    /// Cover edges: `(high, low)` means `high` is a direct parent of `low`.
    pub edges: Vec<(ExceptionId, ExceptionId)>,
}

/// Outcome of [`ExceptionGraph::resolve_detailed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The resolving exception.
    pub exception: ExceptionId,
    /// Whether every raised exception was declared in the graph. When
    /// `false` the result is the universal exception by fallback.
    pub all_known: bool,
    /// How many nodes covered the whole raised set (the chosen one is the
    /// smallest). Zero only on fallback.
    pub candidates: usize,
}

/// Incremental builder for [`ExceptionGraph`] ([C-BUILDER]).
///
/// `resolves(er, [e1, …, ek])` mirrors the paper's declaration syntax
/// "`er: e1, e2, …, ek`" and auto-declares any exception it has not seen,
/// so typical graphs read like the paper's `exception hierarchy` clause.
///
/// # Examples
///
/// ```
/// use caa_exgraph::ExceptionGraphBuilder;
///
/// # fn main() -> Result<(), caa_exgraph::GraphError> {
/// let g = ExceptionGraphBuilder::new()
///     .primitive("rt_exc")
///     .resolves("table_and_sensor_failures", ["vm_stop", "s_stuck"])
///     .build()?;
/// assert!(g.contains(&"rt_exc".into()));
/// assert_eq!(g.root().name(), caa_core::exception::UNIVERSAL_NAME);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
#[must_use = "builders do nothing until .build() is called"]
pub struct ExceptionGraphBuilder {
    nodes: Vec<ExceptionId>,
    edges: Vec<(ExceptionId, ExceptionId)>,
    duplicate: Option<GraphError>,
}

impl ExceptionGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ExceptionGraphBuilder::default()
    }

    /// Declares a primitive exception (no children). Equivalent to
    /// [`ExceptionGraphBuilder::exception`]; the distinct name documents
    /// intent at call sites.
    pub fn primitive(self, id: impl Into<ExceptionId>) -> Self {
        self.exception(id)
    }

    /// Declares an exception node. Declaring the same id twice is an error
    /// reported by [`ExceptionGraphBuilder::build`].
    pub fn exception(mut self, id: impl Into<ExceptionId>) -> Self {
        let id = id.into();
        if self.nodes.contains(&id) {
            self.duplicate.get_or_insert(GraphError::DuplicateNode(id));
        } else {
            self.nodes.push(id);
        }
        self
    }

    /// Declares that `resolver` covers each exception in `covered`,
    /// auto-declaring any id not yet seen — the paper's
    /// "`er: e1, e2, …, ek`" hierarchy clause.
    pub fn resolves<I, T>(mut self, resolver: impl Into<ExceptionId>, covered: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<ExceptionId>,
    {
        let hi = resolver.into();
        self = self.declare_if_new(hi.clone());
        for lo in covered {
            let lo = lo.into();
            self = self.declare_if_new(lo.clone());
            self.edges.push((hi.clone(), lo));
        }
        self
    }

    /// Adds a single cover edge between already-declared (or auto-declared)
    /// exceptions.
    pub fn edge(mut self, high: impl Into<ExceptionId>, low: impl Into<ExceptionId>) -> Self {
        let (hi, lo) = (high.into(), low.into());
        self = self.declare_if_new(hi.clone());
        self = self.declare_if_new(lo.clone());
        self.edges.push((hi, lo));
        self
    }

    fn declare_if_new(mut self, id: ExceptionId) -> Self {
        if !self.nodes.contains(&id) {
            self.nodes.push(id);
        }
        self
    }

    fn edge_if_new(mut self, high: ExceptionId, low: ExceptionId) -> Self {
        if !self.edges.contains(&(high.clone(), low.clone())) {
            self.edges.push((high, low));
        }
        self
    }

    /// Validates and freezes the graph.
    ///
    /// The universal exception is added as the root if absent, and becomes
    /// the parent of every otherwise-parentless exception, so that any
    /// uncovered combination of raised exceptions resolves to it.
    ///
    /// # Errors
    ///
    /// * [`GraphError::DuplicateNode`] / [`GraphError::DuplicateEdge`] for
    ///   repeated declarations;
    /// * [`GraphError::SelfEdge`] for an exception covering itself;
    /// * [`GraphError::Cycle`] if the cover relation is cyclic;
    /// * [`GraphError::Empty`] if nothing was declared.
    pub fn build(self) -> Result<ExceptionGraph, GraphError> {
        if let Some(err) = self.duplicate {
            return Err(err);
        }
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }

        let mut nodes = self.nodes;
        let universal = ExceptionId::universal();
        if !nodes.contains(&universal) {
            nodes.push(universal.clone());
        }
        let index: HashMap<ExceptionId, usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();
        let root = index[&universal];

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (hi, lo) in &self.edges {
            let (&h, &l) = (&index[hi], &index[lo]);
            if h == l {
                return Err(GraphError::SelfEdge(hi.clone()));
            }
            if children[h].contains(&l) {
                return Err(GraphError::DuplicateEdge(hi.clone(), lo.clone()));
            }
            children[h].push(l);
            parents[l].push(h);
        }
        // Root the graph: the universal exception covers every maximal node.
        for (i, node_parents) in parents.iter_mut().enumerate() {
            if i != root && node_parents.is_empty() {
                children[root].push(i);
                node_parents.push(root);
            }
        }

        // Topological order (parents before children) via Kahn's algorithm;
        // leftovers indicate a cycle.
        let mut in_deg: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..nodes.len()).filter(|&i| in_deg[i] == 0).collect();
        let mut topo = Vec::with_capacity(nodes.len());
        while let Some(n) = queue.pop() {
            topo.push(n);
            for &c in &children[n] {
                in_deg[c] -= 1;
                if in_deg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != nodes.len() {
            let culprit = (0..nodes.len())
                .find(|&i| in_deg[i] > 0)
                .expect("cycle implies a node with unresolved in-degree");
            return Err(GraphError::Cycle(nodes[culprit].clone()));
        }

        // Descendant bitsets and levels, children before parents.
        let mut descendants: Vec<BitSet> =
            (0..nodes.len()).map(|_| BitSet::new(nodes.len())).collect();
        let mut level = vec![0usize; nodes.len()];
        for &n in topo.iter().rev() {
            let mut set = BitSet::new(nodes.len());
            set.insert(n);
            let mut lvl = 0;
            for &c in &children[n] {
                set.union_with(&descendants[c]);
                lvl = lvl.max(level[c] + 1);
            }
            descendants[n] = set;
            level[n] = lvl;
        }
        let subtree_size = descendants.iter().map(BitSet::len).collect();

        Ok(ExceptionGraph {
            nodes,
            index,
            children,
            parents,
            descendants,
            subtree_size,
            level,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure3() -> ExceptionGraph {
        ExceptionGraphBuilder::new()
            .resolves("e1∩e2", ["e1", "e2"])
            .resolves("e1∩e3", ["e1", "e3"])
            .resolves("e2∩e3", ["e2", "e3"])
            .resolves("e1∩e2∩e3", ["e1∩e2", "e1∩e3", "e2∩e3"])
            .build()
            .expect("figure 3 graph is valid")
    }

    fn ids(names: &[&str]) -> Vec<ExceptionId> {
        names.iter().map(ExceptionId::new).collect()
    }

    #[test]
    fn figure3_structure() {
        let g = figure3();
        // 3 primitives + 3 pairs + 1 triple + universal root.
        assert_eq!(g.len(), 8);
        assert_eq!(g.primitives().count(), 3);
        assert_eq!(g.resolving().count(), 4);
        assert!(g.root().is_universal());
        assert_eq!(g.level(&"e1".into()), Some(0));
        assert_eq!(g.level(&"e1∩e2".into()), Some(1));
        assert_eq!(g.level(&"e1∩e2∩e3".into()), Some(2));
        assert_eq!(g.level(g.root()), Some(3));
    }

    #[test]
    fn single_exception_resolves_to_itself() {
        let g = figure3();
        for name in ["e1", "e2", "e3", "e1∩e2", "e1∩e2∩e3"] {
            assert_eq!(g.resolve(&ids(&[name])), ExceptionId::new(name));
        }
    }

    #[test]
    fn pairs_resolve_to_pair_nodes() {
        let g = figure3();
        assert_eq!(g.resolve(&ids(&["e1", "e2"])), ExceptionId::new("e1∩e2"));
        assert_eq!(g.resolve(&ids(&["e3", "e1"])), ExceptionId::new("e1∩e3"));
        assert_eq!(g.resolve(&ids(&["e2", "e3"])), ExceptionId::new("e2∩e3"));
    }

    #[test]
    fn triple_resolves_to_triple_node() {
        let g = figure3();
        assert_eq!(
            g.resolve(&ids(&["e1", "e2", "e3"])),
            ExceptionId::new("e1∩e2∩e3")
        );
    }

    #[test]
    fn undefined_exception_resolves_to_universal() {
        let g = figure3();
        let res = g.resolve_detailed(&ids(&["e1", "mystery"]));
        assert!(res.exception.is_universal());
        assert!(!res.all_known);
    }

    #[test]
    fn mixed_levels_resolve_to_cover() {
        let g = figure3();
        // A pair node plus the remaining primitive needs the triple node.
        assert_eq!(
            g.resolve(&ids(&["e1∩e2", "e3"])),
            ExceptionId::new("e1∩e2∩e3")
        );
    }

    #[test]
    fn empty_raise_set_falls_back_to_universal() {
        let g = figure3();
        let res = g.resolve_detailed(&[]);
        assert!(res.exception.is_universal());
        assert!(!res.all_known);
    }

    #[test]
    fn duplicates_in_raise_set_are_harmless() {
        let g = figure3();
        assert_eq!(
            g.resolve(&ids(&["e1", "e1", "e2"])),
            ExceptionId::new("e1∩e2")
        );
    }

    #[test]
    fn covers_is_reflexive_and_transitive_on_figure3() {
        let g = figure3();
        let e1 = ExceptionId::new("e1");
        let pair = ExceptionId::new("e1∩e2");
        let triple = ExceptionId::new("e1∩e2∩e3");
        assert!(g.covers(&e1, &e1));
        assert!(g.covers(&pair, &e1));
        assert!(g.covers(&triple, &e1));
        assert!(g.covers(&triple, &pair));
        assert!(!g.covers(&e1, &pair));
        assert!(g.covers(g.root(), &triple));
    }

    #[test]
    fn parentless_nodes_attach_to_universal() {
        let g = ExceptionGraphBuilder::new()
            .primitive("lonely")
            .build()
            .unwrap();
        assert_eq!(g.parents_of(&"lonely".into()), vec![g.root()]);
        // Two unrelated primitives resolve to universal.
        let g = ExceptionGraphBuilder::new()
            .primitive("a")
            .primitive("b")
            .build()
            .unwrap();
        assert!(g.resolve(&ids(&["a", "b"])).is_universal());
    }

    #[test]
    fn duplicate_node_is_an_error() {
        let err = ExceptionGraphBuilder::new()
            .primitive("x")
            .primitive("x")
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateNode("x".into()));
    }

    #[test]
    fn duplicate_edge_is_an_error() {
        let err = ExceptionGraphBuilder::new()
            .edge("hi", "lo")
            .edge("hi", "lo")
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge("hi".into(), "lo".into()));
    }

    #[test]
    fn self_edge_is_an_error() {
        let err = ExceptionGraphBuilder::new()
            .edge("x", "x")
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::SelfEdge("x".into()));
    }

    #[test]
    fn cycle_is_an_error() {
        let err = ExceptionGraphBuilder::new()
            .edge("a", "b")
            .edge("b", "c")
            .edge("c", "a")
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::Cycle(_)));
    }

    #[test]
    fn empty_graph_is_an_error() {
        assert_eq!(
            ExceptionGraphBuilder::new().build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn removal_reattaches_children() {
        let g = figure3();
        let g2 = g.without(&"e1∩e2".into()).unwrap();
        assert!(!g2.contains(&"e1∩e2".into()));
        // e1 and e2 together must now resolve to the triple node (the next
        // smallest cover).
        assert_eq!(
            g2.resolve(&ids(&["e1", "e2"])),
            ExceptionId::new("e1∩e2∩e3")
        );
        // Other pairs are unaffected.
        assert_eq!(g2.resolve(&ids(&["e1", "e3"])), ExceptionId::new("e1∩e3"));
    }

    #[test]
    fn removal_of_primitive_or_root_is_rejected() {
        let g = figure3();
        assert_eq!(
            g.without(&"e1".into()).unwrap_err(),
            GraphError::CannotRemove("e1".into())
        );
        assert_eq!(
            g.without(g.root()).unwrap_err(),
            GraphError::CannotRemove(g.root().clone())
        );
        assert!(matches!(
            g.without(&"ghost".into()).unwrap_err(),
            GraphError::UnknownNode(_)
        ));
    }

    #[test]
    fn spec_roundtrip_preserves_resolution() {
        let g = figure3();
        let g2 = ExceptionGraph::from_spec(g.to_spec()).unwrap();
        assert_eq!(g, g2);
        assert_eq!(
            g2.resolve(&ids(&["e1", "e3"])),
            g.resolve(&ids(&["e1", "e3"]))
        );
    }

    #[test]
    fn same_level_cover_promotion() {
        // Simplification rule 2: an exception may cover another of the same
        // conceptual level; the cover relation simply makes it higher.
        let g = ExceptionGraphBuilder::new()
            .resolves("big", ["small"])
            .resolves("small", ["x"])
            .build()
            .unwrap();
        assert_eq!(g.level(&"big".into()), Some(2));
        assert!(g.covers(&"big".into(), &"x".into()));
    }

    #[test]
    fn descendants_listing() {
        let g = figure3();
        let desc = g.descendants_of(&"e1∩e2".into());
        let names: Vec<&str> = desc.iter().map(|d| d.name()).collect();
        assert_eq!(desc.len(), 3);
        assert!(names.contains(&"e1") && names.contains(&"e2") && names.contains(&"e1∩e2"));
        assert!(g.descendants_of(&"ghost".into()).is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let repr = format!("{:?}", figure3());
        assert!(repr.contains("ExceptionGraph"));
        assert!(repr.contains("primitives"));
    }
}
