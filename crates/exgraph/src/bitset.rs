//! A small fixed-capacity bitset used for descendant sets.
//!
//! Resolution asks, for many candidate nodes, "does this node's descendant
//! set include every raised exception?". Precomputing each node's descendant
//! set as a bitset turns that into a handful of word operations.

/// Fixed-capacity bitset over node indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold `capacity` bits.
    pub(crate) fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub(crate) fn insert(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Whether bit `i` is set.
    pub(crate) fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` into `self`.
    pub(crate) fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Whether every bit of `other` is also set in `self`.
    pub(crate) fn is_superset_of(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(w, o)| w & o == *o)
    }

    /// Number of set bits.
    pub(crate) fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits, ascending.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        for i in [0, 63, 64, 129] {
            assert!(s.contains(i));
        }
        assert!(!s.contains(1));
        assert!(!s.contains(128));
        assert!(!s.contains(500)); // out of range is simply absent
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn union_and_superset() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(70);
        assert!(!a.is_superset_of(&b));
        a.union_with(&b);
        assert!(a.is_superset_of(&b));
        assert!(a.contains(3) && a.contains(70));
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(200);
        for i in [5, 64, 65, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 64, 65, 199]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }
}
