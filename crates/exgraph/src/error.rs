//! Errors reported while building or editing an exception graph.

use std::error::Error;
use std::fmt;

use caa_core::exception::ExceptionId;

/// Why an exception graph could not be built or edited.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The same exception was declared twice.
    DuplicateNode(ExceptionId),
    /// An edge refers to an exception that was never declared.
    UnknownNode(ExceptionId),
    /// An edge from an exception to itself.
    SelfEdge(ExceptionId),
    /// The same cover edge was declared twice.
    DuplicateEdge(ExceptionId, ExceptionId),
    /// The cover relation contains a cycle through the given exception.
    Cycle(ExceptionId),
    /// A node other than the universal exception has no parent, so the
    /// graph would have multiple roots.
    Unrooted(ExceptionId),
    /// The graph has no nodes at all.
    Empty,
    /// Attempted to remove a node that resolution semantics require
    /// (the universal root or a primitive exception).
    CannotRemove(ExceptionId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateNode(id) => write!(f, "exception {id} declared twice"),
            GraphError::UnknownNode(id) => write!(f, "edge refers to undeclared exception {id}"),
            GraphError::SelfEdge(id) => write!(f, "exception {id} cannot cover itself"),
            GraphError::DuplicateEdge(hi, lo) => {
                write!(f, "cover edge {hi} -> {lo} declared twice")
            }
            GraphError::Cycle(id) => {
                write!(f, "cover relation contains a cycle through {id}")
            }
            GraphError::Unrooted(id) => write!(
                f,
                "exception {id} has no parent; only the universal exception may be a root"
            ),
            GraphError::Empty => f.write_str("exception graph has no nodes"),
            GraphError::CannotRemove(id) => write!(
                f,
                "cannot remove {id}: only interior resolving exceptions may be removed"
            ),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = GraphError::UnknownNode(ExceptionId::new("ghost"));
        assert_eq!(e.to_string(), "edge refers to undeclared exception ghost");
        let e = GraphError::Cycle(ExceptionId::new("a"));
        assert!(e.to_string().contains("cycle"));
        let e = GraphError::DuplicateEdge(ExceptionId::new("hi"), ExceptionId::new("lo"));
        assert!(e.to_string().contains("hi -> lo"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(GraphError::Empty);
    }
}
