//! Exception graphs and concurrent-exception resolution (§3.2 of Xu,
//! Romanovsky & Randell, ICDCS 1998).
//!
//! When exceptions are raised concurrently in several participants of a CA
//! action, they "are merely a manifestation … of a system-wide exception";
//! an **exception graph** imposes a partial order such that a higher
//! exception's handler is intended to handle any lower exception. Multiple
//! concurrent exceptions resolve to *the root of the smallest subtree
//! containing all the raised exceptions*.
//!
//! This crate provides:
//!
//! * [`ExceptionGraph`] — validated DAG with O(words) cover checks and the
//!   deterministic resolution procedure used by every partition;
//! * [`ExceptionGraphBuilder`] — the paper's `er: e1, e2, …, ek` hierarchy
//!   declaration style;
//! * [`generate`] — automatic construction of n-level conjunction lattices
//!   and the simplification rules of §3.2;
//! * DOT export for documentation ([`ExceptionGraph::to_dot`]).
//!
//! # Determinism
//!
//! Resolution is a pure function of the graph and the *set* of raised
//! exceptions: the result is independent of raise order and of which
//! participant performs the search — which is exactly what lets every
//! partition resolve locally yet agree (§3.3.2), and what the harness's
//! resolution-agreement oracle checks empirically.
//!
//! # Examples
//!
//! The Move_Loaded_Table exception graph of Figure 7 (excerpt):
//!
//! ```
//! use caa_exgraph::ExceptionGraphBuilder;
//! use caa_core::exception::ExceptionId;
//!
//! # fn main() -> Result<(), caa_exgraph::GraphError> {
//! let g = ExceptionGraphBuilder::new()
//!     .resolves("dual_motor_failures", ["vm_stop", "rm_stop", "vm_nmove", "rm_nmove"])
//!     .resolves("sensor_failure_or_lplate", ["s_stuck", "l_plate"])
//!     .resolves("other_undefined", ["cs_fault", "l_mes", "rt_exc"])
//!     .build()?;
//!
//! // Both motors fail concurrently:
//! let raised = [ExceptionId::new("vm_stop"), ExceptionId::new("rm_stop")];
//! assert_eq!(g.resolve(&raised), ExceptionId::new("dual_motor_failures"));
//!
//! // Unrelated exceptions fall through to the universal exception:
//! let raised = [ExceptionId::new("vm_stop"), ExceptionId::new("rt_exc")];
//! assert!(g.resolve(&raised).is_universal());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod bitset;
mod dot;
mod error;
pub mod generate;
mod graph;

pub use error::GraphError;
pub use graph::{ExceptionGraph, ExceptionGraphBuilder, GraphSpec, Resolution};
