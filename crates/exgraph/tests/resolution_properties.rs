//! Property-based tests for exception-graph resolution.
//!
//! The implementation resolves via precomputed descendant bitsets; the
//! oracle here recomputes covers by naive DFS reachability, so any
//! divergence indicates a bitset or ordering bug.

use std::collections::HashSet;

use caa_core::exception::ExceptionId;
use caa_exgraph::generate::conjunction_lattice;
use caa_exgraph::{ExceptionGraph, ExceptionGraphBuilder};
use proptest::prelude::*;

/// A random layered DAG description: `layers[k]` holds node names of level
/// k; each non-bottom node covers a non-empty subset of the layer below.
#[derive(Debug, Clone)]
struct RandomDag {
    layers: Vec<Vec<String>>,
    /// For each (layer > 0, node) a bitmask over the layer below.
    covers: Vec<Vec<u64>>,
}

fn random_dag() -> impl Strategy<Value = RandomDag> {
    // 2..=4 layers, each with 1..=5 nodes.
    let layer_sizes = prop::collection::vec(1usize..=5, 2..=4);
    layer_sizes
        .prop_flat_map(|sizes| {
            let layers: Vec<Vec<String>> = sizes
                .iter()
                .enumerate()
                .map(|(k, &n)| (0..n).map(|i| format!("L{k}N{i}")).collect())
                .collect();
            let mask_strategies: Vec<_> = sizes
                .windows(2)
                .map(|w| {
                    let below = w[0] as u32;
                    prop::collection::vec(1u64..(1u64 << below), w[1])
                })
                .collect();
            (Just(layers), mask_strategies)
        })
        .prop_map(|(layers, covers)| RandomDag { layers, covers })
}

fn build(dag: &RandomDag) -> ExceptionGraph {
    let mut b = ExceptionGraphBuilder::new();
    for node in &dag.layers[0] {
        b = b.primitive(node.as_str());
    }
    for (k, masks) in dag.covers.iter().enumerate() {
        let below = &dag.layers[k];
        for (i, &mask) in masks.iter().enumerate() {
            let name = dag.layers[k + 1][i].as_str();
            let covered: Vec<&str> = below
                .iter()
                .enumerate()
                .filter(|(j, _)| mask & (1 << j) != 0)
                .map(|(_, n)| n.as_str())
                .collect();
            b = b.resolves(name, covered);
        }
    }
    b.build().expect("layered DAGs are acyclic and valid")
}

/// Oracle: all nodes reachable from `from` (inclusive), via recursive DFS
/// over `children_of`.
fn reachable(g: &ExceptionGraph, from: &ExceptionId) -> HashSet<ExceptionId> {
    let mut seen = HashSet::new();
    let mut stack = vec![from.clone()];
    while let Some(node) = stack.pop() {
        if seen.insert(node.clone()) {
            for child in g.children_of(&node) {
                stack.push(child.clone());
            }
        }
    }
    seen
}

/// Oracle resolution: scan every node, keep covers of the whole raised set,
/// pick the minimum by (reachable-set size, level, name).
fn oracle_resolve(g: &ExceptionGraph, raised: &[ExceptionId]) -> ExceptionId {
    let raised_set: HashSet<&ExceptionId> = raised.iter().collect();
    if raised_set.is_empty() || raised.iter().any(|r| !g.contains(r)) {
        return ExceptionId::universal();
    }
    g.iter()
        .filter_map(|candidate| {
            let desc = reachable(g, candidate);
            raised_set
                .iter()
                .all(|r| desc.contains(*r))
                .then(|| (desc.len(), g.level(candidate).unwrap(), candidate.clone()))
        })
        .min()
        .map(|(_, _, id)| id)
        .expect("universal root always covers")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resolution_matches_oracle(dag in random_dag(), seed in any::<u64>()) {
        let g = build(&dag);
        // Draw a random non-empty subset of primitives (and occasionally a
        // resolving node) as the raised set.
        let all: Vec<ExceptionId> = g.iter().cloned().collect();
        let mut raised = Vec::new();
        let mut s = seed;
        for id in &all {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s.is_multiple_of(3) {
                raised.push(id.clone());
            }
        }
        if raised.is_empty() {
            raised.push(all[0].clone());
        }
        prop_assert_eq!(g.resolve(&raised), oracle_resolve(&g, &raised));
    }

    #[test]
    fn resolving_exception_covers_all_raised(dag in random_dag(), seed in any::<u64>()) {
        let g = build(&dag);
        let prims: Vec<ExceptionId> = g.primitives().cloned().collect();
        let mut raised = Vec::new();
        let mut s = seed;
        for id in &prims {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s.is_multiple_of(2) {
                raised.push(id.clone());
            }
        }
        if raised.is_empty() {
            raised.push(prims[0].clone());
        }
        let resolved = g.resolve(&raised);
        for r in &raised {
            prop_assert!(
                g.covers(&resolved, r),
                "{} must cover raised {}", resolved, r
            );
        }
    }

    #[test]
    fn single_known_exception_resolves_to_itself(dag in random_dag(), pick in any::<prop::sample::Index>()) {
        let g = build(&dag);
        let all: Vec<ExceptionId> = g.iter().cloned().collect();
        let chosen = all[pick.index(all.len())].clone();
        prop_assert_eq!(g.resolve(std::slice::from_ref(&chosen)), chosen);
    }

    #[test]
    fn spec_roundtrip_preserves_resolution(dag in random_dag(), seed in any::<u64>()) {
        let g = build(&dag);
        let g2 = ExceptionGraph::from_spec(g.to_spec()).unwrap();
        let prims: Vec<ExceptionId> = g.primitives().cloned().collect();
        let mut raised = Vec::new();
        let mut s = seed;
        for id in &prims {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s.is_multiple_of(2) {
                raised.push(id.clone());
            }
        }
        if raised.is_empty() {
            raised.push(prims[0].clone());
        }
        prop_assert_eq!(g.resolve(&raised), g2.resolve(&raised));
    }

    #[test]
    fn lattice_pair_resolution_is_exact(n in 2usize..=6) {
        let prims: Vec<ExceptionId> =
            (0..n).map(|i| ExceptionId::new(format!("p{i}"))).collect();
        let g = conjunction_lattice(&prims, n).unwrap();
        for i in 0..n {
            for j in (i + 1)..n {
                let raised = [prims[i].clone(), prims[j].clone()];
                let resolved = g.resolve(&raised);
                prop_assert!(resolved.name().contains(prims[i].name()));
                prop_assert!(resolved.name().contains(prims[j].name()));
                prop_assert!(!resolved.is_universal());
                // Exactly the pair: one '∩'.
                prop_assert_eq!(resolved.name().matches('∩').count(), 1);
            }
        }
    }

    #[test]
    fn removal_keeps_cover_property(n in 3usize..=5) {
        let prims: Vec<ExceptionId> =
            (0..n).map(|i| ExceptionId::new(format!("p{i}"))).collect();
        let g = conjunction_lattice(&prims, n).unwrap();
        // Remove the first pair node and check all pairs still resolve to a
        // covering exception.
        let victim = ExceptionId::new("p0∩p1");
        let g2 = g.without(&victim).unwrap();
        for i in 0..n {
            for j in (i + 1)..n {
                let raised = [prims[i].clone(), prims[j].clone()];
                let resolved = g2.resolve(&raised);
                prop_assert!(g2.covers(&resolved, &raised[0]));
                prop_assert!(g2.covers(&resolved, &raised[1]));
            }
        }
    }
}
