//! Property-based fault injection: under *any* schedule of device faults,
//! the production cell terminates, every thread completes, and plate
//! conservation holds — the case-study form of Theorem 1 plus the §3.1
//! requirement that recovery leaves external objects consistent.

use caa_prodcell::{
    build_system, CellFaultScripts, ControllerConfig, DeviceFault, FaultScript, ProductionCell,
};
use proptest::prelude::*;

/// Faults that the random scripts may inject. `LostMessage` is excluded
/// (it is injected at the network layer, not by devices); the rest of
/// Figure 7's nine appear.
const INJECTABLE: [DeviceFault; 8] = [
    DeviceFault::VerticalMotorStop,
    DeviceFault::RotationMotorStop,
    DeviceFault::VerticalMotorNoMove,
    DeviceFault::RotationMotorNoMove,
    DeviceFault::SensorStuck,
    DeviceFault::LostPlate,
    DeviceFault::ControlSoftwareFault,
    DeviceFault::RuntimeException,
];

fn fault() -> impl Strategy<Value = DeviceFault> {
    prop::sample::select(INJECTABLE.to_vec())
}

fn script(max_op: u64) -> impl Strategy<Value = FaultScript> {
    prop::collection::vec((1..=max_op, fault()), 0..2).prop_map(|entries| {
        let mut s = FaultScript::new();
        for (op, f) in entries {
            s.schedule(op, f);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Faults are injected into the table, robot and press — the fault
    /// surface of §4's Figure 7. (Belt faults at the exact hand-over ops
    /// need id-level provenance to audit and are exercised by the
    /// deterministic scenarios instead.)
    #[test]
    fn any_fault_schedule_terminates_consistently(
        table in script(14),
        robot in script(22),
        press in script(8),
        seed in 0u64..1000,
    ) {
        let cycles = 2u32;
        let scripts = CellFaultScripts {
            table,
            robot,
            press,
            ..CellFaultScripts::default()
        };
        let cell = ProductionCell::new(scripts);
        let config = ControllerConfig {
            cycles,
            seed,
            ..ControllerConfig::default()
        };
        let report = build_system(&cell, &config).run();
        // 1. Theorem 1: no deadlock, every thread terminates cleanly.
        prop_assert!(
            report.is_ok(),
            "thread failures: {:?}",
            report
                .results
                .iter()
                .filter(|(_, r)| r.is_err())
                .collect::<Vec<_>>()
        );
        // 2. Conservation: every inserted blank is delivered, lost or
        //    still inside the cell.
        let audit = cell.audit_committed();
        prop_assert!(audit.is_consistent(), "audit {audit:?}");
        // 3. The (fault-free) feed belt inserted one blank per cycle.
        prop_assert_eq!(audit.inserted, cycles, "audit {:?}", audit);
        // 4. Whatever was delivered is forged.
        prop_assert!(cell
            .deposit
            .committed()
            .delivered()
            .iter()
            .all(|p| p.forged));
    }
}
