//! Seeded fault exploration through the simulation harness: under *any*
//! schedule of device faults, the production cell terminates, every thread
//! completes, resolution agreement and nesting consistency hold on the
//! recorded trace, the run replays deterministically, and plate
//! conservation holds — the case-study form of Theorem 1 plus the §3.1
//! requirement that recovery leaves external objects consistent.
//!
//! Each seed fully determines the fault schedule (faults are injected into
//! the table, robot and press — the fault surface of §4's Figure 7); a
//! failing seed reproduces exactly by number.

use caa_harness::prodcell::run_seed;

const CYCLES: u32 = 2;

#[test]
fn any_fault_schedule_terminates_consistently() {
    let mut seeds_with_recoveries = 0u32;
    for seed in 0..24 {
        // Replay checking doubles the cost; the dedicated seed test below
        // covers it, so the bulk sweep checks the other oracles only.
        let run = run_seed(seed, CYCLES, false);
        assert!(
            run.violations.is_empty(),
            "seed {seed}: {:?}\ntrace:\n{}",
            run.violations,
            run.trace.render()
        );

        // Conservation: every inserted blank is delivered, lost or still
        // inside the cell; the fault-free feed belt inserted one per cycle.
        let audit = run.cell.audit_committed();
        assert!(audit.is_consistent(), "seed {seed}: audit {audit:?}");
        assert_eq!(audit.inserted, CYCLES, "seed {seed}: audit {audit:?}");

        // Whatever was delivered is forged.
        assert!(
            run.cell
                .deposit
                .committed()
                .delivered()
                .iter()
                .all(|p| p.forged),
            "seed {seed}: unforged plate delivered"
        );

        if run.report.runtime_stats.recoveries > 0 {
            seeds_with_recoveries += 1;
        }
    }
    // The seeded schedules must actually exercise coordinated recovery,
    // not just fault-free production.
    assert!(
        seeds_with_recoveries >= 8,
        "only {seeds_with_recoveries}/24 seeds exercised coordinated recovery"
    );
}

#[test]
fn faulty_seeds_replay_deterministically() {
    // Byte-exact replay determinism: shared-object acquisition is
    // arbitrated through the simulation, so the full trace — timings,
    // sends and object acquisitions — is identical across runs, on a
    // handful of seeds including ones with non-empty fault schedules.
    for seed in [0, 3, 7, 11] {
        let run = run_seed(seed, CYCLES, true);
        assert!(
            run.violations.is_empty(),
            "seed {seed}: {:?}",
            run.violations
        );
    }
}
