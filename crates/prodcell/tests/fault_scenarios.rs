//! End-to-end fault-injection scenarios for the production cell (§4):
//! every primitive exception of Figure 7 is raised somewhere, recovery is
//! coordinated across the six controller threads, and plate conservation
//! holds afterwards.

use caa_prodcell::{
    build_system, CellFaultScripts, ControllerConfig, DeviceFault, FaultScript, ProductionCell,
};
use caa_runtime::SystemReport;

fn run(scripts: CellFaultScripts, cycles: u32) -> (ProductionCell, SystemReport) {
    let cell = ProductionCell::new(scripts);
    let config = ControllerConfig {
        cycles,
        ..ControllerConfig::default()
    };
    let report = build_system(&cell, &config).run();
    report.expect_ok();
    (cell, report)
}

#[test]
fn fault_free_run_delivers_every_blank() {
    let (cell, report) = run(CellFaultScripts::default(), 4);
    assert_eq!(report.runtime_stats.recoveries, 0);
    let m = cell.metrics.committed();
    assert_eq!(m.inserted, 4);
    assert_eq!(m.delivered, 4);
    assert_eq!(m.lost_plates, 0);
    assert_eq!(m.recovered_cycles, 0);
    let audit = cell.audit_committed();
    assert!(audit.is_consistent(), "audit {audit:?}");
    // All delivered plates were forged.
    assert!(cell
        .deposit
        .committed()
        .delivered()
        .iter()
        .all(|p| p.forged));
}

#[test]
fn vertical_motor_stop_is_forward_recovered() {
    // Table op 3 of cycle 1 is the lift inside Move_Loaded_Table.
    let scripts = CellFaultScripts {
        table: FaultScript::new().with(3, DeviceFault::VerticalMotorStop),
        ..CellFaultScripts::default()
    };
    let (cell, report) = run(scripts, 2);
    let m = cell.metrics.committed();
    assert_eq!(m.inserted, 2);
    assert_eq!(
        m.delivered, 2,
        "forward recovery must save the plate: {m:?}"
    );
    assert!(
        report.runtime_stats.recoveries > 0,
        "a recovery must have run"
    );
    assert_eq!(m.lost_plates, 0);
    assert!(cell.audit_committed().is_consistent());
    // The motor was repaired by the handler.
    assert!(!cell.table.committed().vertical_motor_broken);
}

#[test]
fn rotation_motor_fault_is_forward_recovered() {
    // Table op 2 of cycle 1 is rotate_to_robot.
    let scripts = CellFaultScripts {
        table: FaultScript::new().with(2, DeviceFault::RotationMotorStop),
        ..CellFaultScripts::default()
    };
    let (cell, _report) = run(scripts, 1);
    let m = cell.metrics.committed();
    assert_eq!(m.delivered, 1, "{m:?}");
    assert!(cell.audit_committed().is_consistent());
}

#[test]
fn lost_plate_is_written_off_and_next_cycle_succeeds() {
    // Table op 4 of cycle 1 is take_plate inside Grab_Plate_From_Table:
    // the plate drops, L_PLATE escalates to Table_Press_Robot, the cycle is
    // abandoned, and cycle 2 proceeds normally.
    let scripts = CellFaultScripts {
        table: FaultScript::new().with(4, DeviceFault::LostPlate),
        ..CellFaultScripts::default()
    };
    let (cell, report) = run(scripts, 2);
    let m = cell.metrics.committed();
    assert_eq!(m.inserted, 2, "{m:?}");
    assert_eq!(m.delivered, 1, "{m:?}");
    assert_eq!(m.lost_plates, 1, "{m:?}");
    assert!(report.runtime_stats.recoveries > 0);
    let audit = cell.audit_committed();
    assert!(audit.is_consistent(), "audit {audit:?}");
}

#[test]
fn stuck_sensor_degrades_but_keeps_producing() {
    // Table op 2 (rotate) trips the sensor-stuck fault: NCS_FAIL is
    // signalled from Move_Loaded_Table, the table- and robot-sensor lanes
    // escalate T_SENSOR / A1_SENSOR concurrently, and Table_Press_Robot
    // resolves them to degraded_sensors.
    let scripts = CellFaultScripts {
        table: FaultScript::new().with(2, DeviceFault::SensorStuck),
        ..CellFaultScripts::default()
    };
    let (cell, _report) = run(scripts, 2);
    let m = cell.metrics.committed();
    assert_eq!(m.inserted, 2, "{m:?}");
    assert!(
        m.degraded_sensor_cycles >= 1,
        "degraded cycle must be recorded: {m:?}"
    );
    assert!(m.recovered_cycles >= 1, "{m:?}");
    // The sensor was repaired during recovery.
    assert!(!cell.table.committed().sensor_stuck);
    assert!(cell.audit_committed().is_consistent());
    // Conservation: inserted == delivered + lost (no plates in flight).
    assert_eq!(m.inserted, m.delivered + m.lost_plates, "{m:?}");
}

#[test]
fn robot_lost_plate_during_removal_is_recovered() {
    // Robot op 6 of cycle 1 is arm2_grab inside Remove_Plate.
    let scripts = CellFaultScripts {
        robot: FaultScript::new().with(6, DeviceFault::LostPlate),
        ..CellFaultScripts::default()
    };
    let (cell, _report) = run(scripts, 2);
    let m = cell.metrics.committed();
    assert_eq!(m.inserted, 2, "{m:?}");
    assert_eq!(m.lost_plates, 1, "{m:?}");
    assert_eq!(m.delivered, 1, "{m:?}");
    assert!(cell.audit_committed().is_consistent());
}

#[test]
fn press_control_fault_ends_cycle_without_losing_conservation() {
    // Press op 2 of cycle 1 is the forge.
    let scripts = CellFaultScripts {
        press: FaultScript::new().with(2, DeviceFault::ControlSoftwareFault),
        ..CellFaultScripts::default()
    };
    let (cell, report) = run(scripts, 2);
    let m = cell.metrics.committed();
    assert_eq!(m.inserted, 2, "{m:?}");
    assert!(
        report.runtime_stats.recoveries > 0,
        "recovery must have run somewhere: {:?}",
        report.runtime_stats
    );
    assert!(cell.audit_committed().is_consistent());
    assert_eq!(m.inserted, m.delivered + m.lost_plates, "{m:?}");
}

#[test]
fn multiple_faults_across_cycles_all_recover() {
    let scripts = CellFaultScripts {
        table: FaultScript::new()
            .with(3, DeviceFault::VerticalMotorStop) // cycle 1 lift
            .with(10, DeviceFault::LostPlate), // cycle 2 take_plate
        robot: FaultScript::new().with(25, DeviceFault::SensorStuck),
        ..CellFaultScripts::default()
    };
    let (cell, report) = run(scripts, 4);
    let m = cell.metrics.committed();
    assert_eq!(m.inserted, 4, "{m:?}");
    assert!(
        report.runtime_stats.recoveries > 0,
        "{:?}",
        report.runtime_stats
    );
    assert!(cell.audit_committed().is_consistent());
    assert_eq!(m.inserted, m.delivered + m.lost_plates, "{m:?}");
    assert!(m.delivered >= 2, "most cycles should still produce: {m:?}");
}

#[test]
fn every_figure7_fault_keeps_the_system_consistent() {
    // Inject each primitive fault once (at an early table/robot/press op)
    // and verify the whole system always terminates consistently — the
    // Theorem 1 claim exercised through the case study.
    for fault in DeviceFault::ALL {
        if fault == DeviceFault::LostMessage {
            // l_mes is exercised through network fault injection in the
            // runtime's tests; the device script cannot emit it naturally.
            continue;
        }
        let scripts = CellFaultScripts {
            table: FaultScript::new().with(2, fault),
            ..CellFaultScripts::default()
        };
        let cell = ProductionCell::new(scripts);
        let config = ControllerConfig {
            cycles: 2,
            ..ControllerConfig::default()
        };
        let report = build_system(&cell, &config).run();
        assert!(
            report.is_ok(),
            "fault {fault}: thread failures {:?}",
            report.results
        );
        let m = cell.metrics.committed();
        assert_eq!(m.inserted, 2, "fault {fault}: {m:?}");
        assert!(
            cell.audit_committed().is_consistent(),
            "fault {fault}: audit {:?}",
            cell.audit_committed()
        );
    }
}
