//! The assembled production cell: every device wrapped in a transactional
//! [`SharedObject`], plus run metrics and a conservation audit.

use caa_runtime::objects::irreversible;
use caa_runtime::SharedObject;

use crate::devices::{DepositBelt, FeedBelt, Press, Robot, RotaryTable};
use crate::faults::FaultScript;

/// Per-device fault schedules for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellFaultScripts {
    /// Feed-belt faults.
    pub feed: FaultScript,
    /// Rotary-table faults.
    pub table: FaultScript,
    /// Robot faults.
    pub robot: FaultScript,
    /// Press faults.
    pub press: FaultScript,
    /// Deposit-belt faults.
    pub deposit: FaultScript,
}

/// Counters maintained by the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellMetrics {
    /// Blanks inserted by the environment.
    pub inserted: u32,
    /// Forged plates delivered to the environment.
    pub delivered: u32,
    /// Plates declared lost (the `l_plate` / `L_PLATE` path).
    pub lost_plates: u32,
    /// Coordinated recoveries that ended in forward recovery.
    pub recovered_cycles: u32,
    /// Cycles that completed with degraded (non-critical) sensors.
    pub degraded_sensor_cycles: u32,
    /// Cycles whose outer action ended in µ or ƒ.
    pub failed_cycles: u32,
}

/// The production cell: shared, transactional devices.
///
/// Cloning is cheap: clones refer to the same devices (the controller's six
/// threads each hold a clone).
///
/// # Examples
///
/// ```
/// use caa_prodcell::{CellFaultScripts, ProductionCell};
///
/// let cell = ProductionCell::new(CellFaultScripts::default());
/// assert_eq!(cell.metrics.committed().delivered, 0);
/// assert!(cell.audit_committed().is_consistent());
/// ```
#[derive(Debug, Clone)]
pub struct ProductionCell {
    /// The feed belt (environment → table).
    pub feed: SharedObject<FeedBelt>,
    /// The elevating rotary table.
    pub table: SharedObject<RotaryTable>,
    /// The two-armed rotary robot.
    pub robot: SharedObject<Robot>,
    /// The press. Irreversible: forging cannot be undone, so a µ request
    /// after a forge escalates to ƒ (§3.4).
    pub press: SharedObject<Press>,
    /// The deposit belt (robot → environment).
    pub deposit: SharedObject<DepositBelt>,
    /// Run counters.
    pub metrics: SharedObject<CellMetrics>,
}

/// Result of a plate-conservation audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Audit {
    /// Blanks inserted by the environment.
    pub inserted: u32,
    /// Plates currently inside the cell (belts, table, arms, press).
    pub in_flight: u32,
    /// Plates delivered to the environment.
    pub delivered: u32,
    /// Plates recorded as lost.
    pub lost: u32,
}

impl Audit {
    /// Conservation: every inserted blank is in flight, delivered or lost.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.inserted == self.in_flight + self.delivered + self.lost
    }
}

impl ProductionCell {
    /// Builds a cell with the given fault schedules.
    #[must_use]
    pub fn new(scripts: CellFaultScripts) -> Self {
        ProductionCell {
            feed: SharedObject::new("feed_belt", FeedBelt::new(scripts.feed)),
            table: SharedObject::new("rotary_table", RotaryTable::new(scripts.table)),
            robot: SharedObject::new("robot", Robot::new(scripts.robot)),
            press: irreversible("press", Press::new(scripts.press)),
            deposit: SharedObject::new("deposit_belt", DepositBelt::new(scripts.deposit)),
            metrics: SharedObject::new("metrics", CellMetrics::default()),
        }
    }

    /// Audits the committed (outside-any-action) state for plate
    /// conservation.
    #[must_use]
    pub fn audit_committed(&self) -> Audit {
        let feed = self.feed.committed();
        let table = self.table.committed();
        let robot = self.robot.committed();
        let press = self.press.committed();
        let deposit = self.deposit.committed();
        let metrics = self.metrics.committed();
        let in_flight = feed.len() as u32
            + u32::from(table.plate().is_some())
            + u32::from(robot.arm1.holding().is_some())
            + u32::from(robot.arm2.holding().is_some())
            + u32::from(press.plate().is_some())
            + deposit.backlog() as u32;
        Audit {
            inserted: feed.total_inserted(),
            in_flight,
            delivered: deposit.delivered().len() as u32,
            lost: metrics.lost_plates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Plate;
    use crate::faults::DeviceFault;

    #[test]
    fn fresh_cell_is_consistent() {
        let cell = ProductionCell::new(CellFaultScripts::default());
        let audit = cell.audit_committed();
        assert!(audit.is_consistent());
        assert_eq!(audit.inserted, 0);
    }

    #[test]
    fn press_is_irreversible_but_other_devices_are_not() {
        let cell = ProductionCell::new(CellFaultScripts::default());
        assert!(!cell.press.is_undoable());
        assert!(cell.table.is_undoable());
        assert!(cell.feed.is_undoable());
    }

    #[test]
    fn audit_tracks_environment_mutations() {
        let cell = ProductionCell::new(CellFaultScripts::default());
        // The environment (blank supplier) adds one blank outside any
        // action.
        cell.feed
            .mutate_committed(|f| f.insert_blank(Plate::blank(1)).unwrap())
            .unwrap();
        cell.metrics.mutate_committed(|m| m.inserted = 1).unwrap();

        let audit = cell.audit_committed();
        assert_eq!(audit.inserted, 1);
        assert_eq!(audit.in_flight, 1);
        assert!(audit.is_consistent());
    }

    #[test]
    fn scripted_cell_carries_faults() {
        let scripts = CellFaultScripts {
            table: FaultScript::new().with(1, DeviceFault::SensorStuck),
            ..CellFaultScripts::default()
        };
        let cell = ProductionCell::new(scripts);
        // The script travels into the committed device state.
        let fault = cell
            .table
            .mutate_committed(|t| t.load(Plate::blank(1)))
            .unwrap();
        assert_eq!(fault, Err(DeviceFault::SensorStuck));
    }
}
