//! Device fault model: the nine primitive exceptions of Figure 7.
//!
//! Faults are *scripted*: a [`FaultScript`] schedules "the k-th operation on
//! device D fails with fault F", so experiments are reproducible and tests
//! can target exact recovery paths.

use std::collections::VecDeque;
use std::fmt;

use caa_core::exception::ExceptionId;

/// The ways a production-cell device can fail — one per primitive exception
/// of the Move_Loaded_Table graph (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceFault {
    /// `vm_stop`: vertical table motor stops unexpectedly.
    VerticalMotorStop,
    /// `rm_stop`: rotation table motor stops unexpectedly.
    RotationMotorStop,
    /// `vm_nmove`: vertical motor can't move.
    VerticalMotorNoMove,
    /// `rm_nmove`: rotation motor can't move.
    RotationMotorNoMove,
    /// `s_stuck`: sensor(s) stuck at 0.
    SensorStuck,
    /// `l_plate`: lost plate.
    LostPlate,
    /// `cs_fault`: control software fault(s).
    ControlSoftwareFault,
    /// `l_mes`: lost or corrupted message.
    LostMessage,
    /// `rt_exc`: run-time exceptions like underflow or overflow.
    RuntimeException,
}

impl DeviceFault {
    /// All nine faults, in Figure 7 order.
    pub const ALL: [DeviceFault; 9] = [
        DeviceFault::VerticalMotorStop,
        DeviceFault::RotationMotorStop,
        DeviceFault::VerticalMotorNoMove,
        DeviceFault::RotationMotorNoMove,
        DeviceFault::SensorStuck,
        DeviceFault::LostPlate,
        DeviceFault::ControlSoftwareFault,
        DeviceFault::LostMessage,
        DeviceFault::RuntimeException,
    ];

    /// The exception name this fault raises (Figure 7's labels).
    #[must_use]
    pub fn exception_name(self) -> &'static str {
        match self {
            DeviceFault::VerticalMotorStop => "vm_stop",
            DeviceFault::RotationMotorStop => "rm_stop",
            DeviceFault::VerticalMotorNoMove => "vm_nmove",
            DeviceFault::RotationMotorNoMove => "rm_nmove",
            DeviceFault::SensorStuck => "s_stuck",
            DeviceFault::LostPlate => "l_plate",
            DeviceFault::ControlSoftwareFault => "cs_fault",
            DeviceFault::LostMessage => "l_mes",
            DeviceFault::RuntimeException => "rt_exc",
        }
    }

    /// The exception this fault raises.
    #[must_use]
    pub fn exception(self) -> ExceptionId {
        ExceptionId::new(self.exception_name())
    }
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.exception_name())
    }
}

/// A schedule of faults for one device: `(operation_index, fault)` pairs.
///
/// Device state machines count their operations; when the counter reaches a
/// scheduled index, the operation fails with the scheduled fault (and
/// applies its physical effect, e.g. a lost plate disappears).
///
/// # Examples
///
/// ```
/// use caa_prodcell::{DeviceFault, FaultScript};
///
/// let mut script = FaultScript::new();
/// script.schedule(3, DeviceFault::VerticalMotorStop);
/// assert_eq!(script.check(0), None);
/// assert_eq!(script.check(3), Some(DeviceFault::VerticalMotorStop));
/// // One-shot: the fault fires once.
/// assert_eq!(script.check(3), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    scheduled: VecDeque<(u64, DeviceFault)>,
}

impl FaultScript {
    /// An empty schedule (fault-free device).
    #[must_use]
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Schedules `fault` to fire at the device's `op_index`-th operation.
    pub fn schedule(&mut self, op_index: u64, fault: DeviceFault) {
        self.scheduled.push_back((op_index, fault));
        self.scheduled
            .make_contiguous()
            .sort_by_key(|&(idx, _)| idx);
    }

    /// Builder-style [`FaultScript::schedule`].
    #[must_use]
    pub fn with(mut self, op_index: u64, fault: DeviceFault) -> Self {
        self.schedule(op_index, fault);
        self
    }

    /// Consumes and returns the fault scheduled for `op_index`, if any.
    pub fn check(&mut self, op_index: u64) -> Option<DeviceFault> {
        if self
            .scheduled
            .front()
            .is_some_and(|&(idx, _)| idx == op_index)
        {
            self.scheduled.pop_front().map(|(_, f)| f)
        } else {
            None
        }
    }

    /// Whether any fault is still pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty()
    }
}

/// Shared, **non-transactional** handle to a [`FaultScript`].
///
/// Device state lives inside transactional
/// [`SharedObject`](caa_runtime::SharedObject)s whose layers are cloned and
/// rolled back; a fault script embedded in that state would be "un-fired"
/// by a rollback and fire again during recovery. Faults are physical
/// events: once fired, they stay fired. All clones of a `ScriptHandle`
/// (including the clones inside transaction layers) share one script.
#[derive(Debug, Clone, Default)]
pub struct ScriptHandle(std::sync::Arc<parking_lot::Mutex<FaultScript>>);

impl ScriptHandle {
    /// Wraps a script for shared consumption.
    #[must_use]
    pub fn new(script: FaultScript) -> Self {
        ScriptHandle(std::sync::Arc::new(parking_lot::Mutex::new(script)))
    }

    /// Consumes and returns the fault scheduled for `op_index`, if any.
    pub fn check(&self, op_index: u64) -> Option<DeviceFault> {
        self.0.lock().check(op_index)
    }

    /// Whether any fault is still pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }
}

impl From<FaultScript> for ScriptHandle {
    fn from(script: FaultScript) -> Self {
        ScriptHandle::new(script)
    }
}

impl PartialEq for ScriptHandle {
    /// Scripts are test scaffolding, not observable device state; handles
    /// always compare equal so device-state comparisons ignore them.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_handle_shares_consumption_across_clones() {
        let h = ScriptHandle::new(FaultScript::new().with(1, DeviceFault::LostPlate));
        let h2 = h.clone(); // a transaction layer's clone
        assert_eq!(h2.check(1), Some(DeviceFault::LostPlate));
        // The "rolled back" clone must not resurrect the fault.
        assert_eq!(h.check(1), None);
        assert!(h.is_empty());
    }

    #[test]
    fn fault_names_match_figure7() {
        let names: Vec<&str> = DeviceFault::ALL
            .iter()
            .map(|f| f.exception_name())
            .collect();
        assert_eq!(
            names,
            vec![
                "vm_stop", "rm_stop", "vm_nmove", "rm_nmove", "s_stuck", "l_plate", "cs_fault",
                "l_mes", "rt_exc"
            ]
        );
    }

    #[test]
    fn script_fires_in_order_and_once() {
        let mut s = FaultScript::new()
            .with(5, DeviceFault::LostPlate)
            .with(2, DeviceFault::SensorStuck);
        assert!(s.check(0).is_none());
        assert_eq!(s.check(2), Some(DeviceFault::SensorStuck));
        assert!(s.check(3).is_none());
        assert_eq!(s.check(5), Some(DeviceFault::LostPlate));
        assert!(s.is_empty());
    }

    #[test]
    fn multiple_faults_at_same_index_fire_one_per_check() {
        let mut s = FaultScript::new()
            .with(1, DeviceFault::VerticalMotorStop)
            .with(1, DeviceFault::RotationMotorStop);
        assert!(s.check(1).is_some());
        assert!(s.check(1).is_some());
        assert!(s.check(1).is_none());
    }

    #[test]
    fn exception_ids_roundtrip() {
        for f in DeviceFault::ALL {
            assert_eq!(f.exception().name(), f.exception_name());
            assert_eq!(f.to_string(), f.exception_name());
        }
    }
}
