//! The FZI **production cell** case study (§4 of Xu, Romanovsky & Randell,
//! ICDCS 1998): a discrete device simulator plus a CA-action control
//! program with coordinated exception handling.
//!
//! "The task of the cell is to get a metal blank (or plate) from its
//! 'environment' via the feed belt, transform it into the forged plate by
//! using a press, and return it to the environment via the deposit belt."
//!
//! * [`devices`] — state machines for the six devices (feed belt, elevating
//!   rotary table, two-armed rotary robot, press, deposit belt, traffic
//!   lights), each failing on cue from a [`FaultScript`];
//! * [`move_loaded_table_graph`] — the exception graph of Figure 7, plus
//!   graphs for the enclosing actions;
//! * [`ProductionCell`] — the assembled cell behind transactional shared
//!   objects, with a plate-conservation [`Audit`];
//! * [`controller`] — six controller threads running the nested CA-action
//!   structure of Figure 6 (`Table_Press_Robot` ⊃ `Unload_Table` ⊃
//!   `Move_Loaded_Table`, …), with forward-recovery handlers and the §4
//!   escalation chain (`L_PLATE`, `NCS_FAIL`, `T_SENSOR`, `A1_SENSOR`,
//!   µ, ƒ).
//!
//! # Determinism
//!
//! A controller run is a pure function of its configuration: device
//! faults fire on scripted operation counts, message latencies come from
//! the seed, and the cell's [`SharedObject`]s are acquired through the
//! runtime's deterministic arbitration — so a seeded run (including the
//! harness's `caa_harness::prodcell::run_seed`) renders a byte-identical
//! trace on every replay.
//!
//! [`SharedObject`]: caa_runtime::SharedObject
//!
//! # Examples
//!
//! A fault-free run forging three blanks:
//!
//! ```
//! use caa_prodcell::{build_system, CellFaultScripts, ControllerConfig, ProductionCell};
//!
//! let cell = ProductionCell::new(CellFaultScripts::default());
//! let config = ControllerConfig { cycles: 3, ..ControllerConfig::default() };
//! let report = build_system(&cell, &config).run();
//! report.expect_ok();
//! assert_eq!(cell.metrics.committed().delivered, 3);
//! assert!(cell.audit_committed().is_consistent());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod cell;
pub mod controller;
pub mod devices;
mod exceptions;
mod faults;

pub use cell::{Audit, CellFaultScripts, CellMetrics, ProductionCell};
pub use controller::{build_system, spawn_controller, ControllerConfig};
pub use exceptions::{
    move_loaded_table_graph, table_press_robot_graph, unload_table_graph, A1_SENSOR_SIGNAL,
    L_PLATE_SIGNAL, NCS_FAIL_SIGNAL, T_SENSOR_SIGNAL,
};
pub use faults::{DeviceFault, FaultScript};
