//! The CA-action control program for the production cell (§4, Figure 6).
//!
//! Six threads — one per device lane, as in Figure 6's swim lanes — run the
//! cycle under the outermost `Table_Press_Robot` action:
//!
//! ```text
//! Table_Press_Robot (table_sensor, table, robot_sensor, robot, press_sensor, press)
//! ├── Unload_Table (table_sensor, table, robot_sensor, robot)
//! │   ├── Move_Loaded_Table   (table_sensor, table)      — Figure 7 graph
//! │   ├── Extend_Arm1         (robot_sensor, robot)
//! │   ├── Grab_Plate_From_Table (all four)
//! │   └── Retract_Arm1        (robot_sensor, robot)
//! ├── Pressing        (robot_sensor, robot, press_sensor, press)
//! ├── Move_Unloaded_Table_Back (table_sensor, table)
//! └── Remove_Plate    (robot_sensor, robot, press_sensor, press)
//! ```
//!
//! Device faults raise the primitive exceptions of Figure 7; handlers
//! perform forward recovery (repairing motors/sensors) where possible and
//! otherwise signal `L_PLATE`, `NCS_FAIL`, `T_SENSOR`, `A1_SENSOR`, µ or ƒ
//! to the enclosing action, exactly following §4's escalation chain.

use caa_core::exception::{Exception, ExceptionId};
use caa_core::outcome::HandlerVerdict;
use caa_core::time::VirtualDuration;
use caa_runtime::{ActionDef, Ctx, SharedObject, Step, System};
use caa_simnet::LatencyModel;

use crate::cell::ProductionCell;
use crate::devices::{DeviceResult, Plate, TableAngle};
use crate::exceptions::{
    move_loaded_table_graph, table_press_robot_graph, unload_table_graph, A1_SENSOR_SIGNAL,
    L_PLATE_SIGNAL, NCS_FAIL_SIGNAL, T_SENSOR_SIGNAL,
};

/// Thread ids of the six controller threads, in Figure 6 lane order.
pub mod threads {
    /// Table sensor lane.
    pub const TABLE_SENSOR: u32 = 0;
    /// Table actuator lane.
    pub const TABLE: u32 = 1;
    /// Robot sensor lane.
    pub const ROBOT_SENSOR: u32 = 2;
    /// Robot actuator lane.
    pub const ROBOT: u32 = 3;
    /// Press sensor lane.
    pub const PRESS_SENSOR: u32 = 4;
    /// Press actuator lane.
    pub const PRESS: u32 = 5;
}

/// Configuration of a controller run.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Production cycles (blanks) to attempt.
    pub cycles: u32,
    /// Message-latency model for the six partitions.
    pub latency: LatencyModel,
    /// Deterministic seed.
    pub seed: u64,
    /// Virtual time per device operation.
    pub op_time: VirtualDuration,
    /// The paper's `Treso` (resolution time).
    pub resolution_delay: VirtualDuration,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            cycles: 1,
            latency: LatencyModel::Fixed(VirtualDuration::from_millis(5)),
            seed: 0,
            op_time: VirtualDuration::from_millis(50),
            resolution_delay: VirtualDuration::from_millis(20),
        }
    }
}

/// Performs one device operation inside an action: charges `op_time`,
/// applies `f` transactionally, and raises the corresponding Figure 7
/// exception when the device reports a fault.
fn dev_op<T: Clone + Send + 'static, R>(
    rc: &mut Ctx,
    obj: &SharedObject<T>,
    op_time: VirtualDuration,
    f: impl FnOnce(&mut T) -> DeviceResult<R>,
) -> Step<R> {
    rc.work(op_time)?;
    match rc.update(obj, f)? {
        Ok(r) => Ok(r),
        Err(fault) => {
            if std::env::var_os("CAA_TRACE").is_some() {
                eprintln!(
                    "[dev_op {} in {:?}] {} fails: {fault}",
                    obj.name(),
                    rc.action_name(),
                    rc.name(),
                );
            }
            rc.raise(Exception::new(fault.exception()).with_detail(fault.exception_name()))?;
            unreachable!("raise always transfers control")
        }
    }
}

/// Builds the whole control system over `cell`: six threads, the Figure 6
/// action structure, and all handlers. Returns the ready-to-run system.
#[must_use]
pub fn build_system(cell: &ProductionCell, config: &ControllerConfig) -> System {
    let mut sys = System::builder()
        .latency(config.latency)
        .seed(config.seed)
        .resolution_delay(config.resolution_delay)
        .build();
    spawn_controller(&mut sys, cell, config);
    sys
}

/// Like [`build_system`] but over a caller-prepared
/// [`SystemBuilder`](caa_runtime::SystemBuilder) (e.g. with fault
/// injection on the network).
pub fn spawn_controller(sys: &mut System, cell: &ProductionCell, config: &ControllerConfig) {
    let defs = Definitions::new(cell, config);
    let cycles = config.cycles;
    let op = config.op_time;

    let (d, c) = (defs.clone(), cell.clone());
    sys.spawn("table_sensor", move |ctx| {
        for _ in 0..cycles {
            d.run_cycle_table_sensor(ctx, &c, op)?;
        }
        Ok(())
    });
    let (d, c) = (defs.clone(), cell.clone());
    sys.spawn("table", move |ctx| {
        for _ in 0..cycles {
            d.run_cycle_table(ctx, &c, op)?;
        }
        Ok(())
    });
    let (d, c) = (defs.clone(), cell.clone());
    sys.spawn("robot_sensor", move |ctx| {
        for _ in 0..cycles {
            d.run_cycle_robot_sensor(ctx, &c, op)?;
        }
        Ok(())
    });
    let (d, c) = (defs.clone(), cell.clone());
    sys.spawn("robot", move |ctx| {
        for _ in 0..cycles {
            d.run_cycle_robot(ctx, &c, op)?;
        }
        Ok(())
    });
    let (d, c) = (defs.clone(), cell.clone());
    sys.spawn("press_sensor", move |ctx| {
        for _ in 0..cycles {
            d.run_cycle_press_sensor(ctx, &c, op)?;
        }
        Ok(())
    });
    let (d, c) = (defs, cell.clone());
    sys.spawn("press", move |ctx| {
        for _ in 0..cycles {
            d.run_cycle_press(ctx, &c, op)?;
        }
        Ok(())
    });
}

/// The action definitions, built once and shared by all threads.
#[derive(Debug, Clone)]
struct Definitions {
    tpr: ActionDef,
    unload: ActionDef,
    mlt: ActionDef,
    extend_arm1: ActionDef,
    grab: ActionDef,
    retract_arm1: ActionDef,
    pressing: ActionDef,
    back: ActionDef,
    remove: ActionDef,
}

impl Definitions {
    fn new(cell: &ProductionCell, config: &ControllerConfig) -> Self {
        use threads::*;
        let op = config.op_time;

        // ---------------- Table_Press_Robot (outermost) ----------------
        let mut tpr = ActionDef::builder("Table_Press_Robot")
            .role("table_sensor", TABLE_SENSOR)
            .role("table", TABLE)
            .role("robot_sensor", ROBOT_SENSOR)
            .role("robot", ROBOT)
            .role("press_sensor", PRESS_SENSOR)
            .role("press", PRESS)
            .graph(table_press_robot_graph());
        for role in [
            "table_sensor",
            "robot_sensor",
            "robot",
            "press_sensor",
            "press",
        ] {
            let c = cell.clone();
            tpr = tpr.fallback_handler(role, move |hc| tpr_repair(hc, &c, false));
        }
        // The table role also maintains the metrics and clears the cell so
        // the next cycle starts clean.
        let c = cell.clone();
        tpr = tpr.fallback_handler("table", move |hc| tpr_repair(hc, &c, true));
        let tpr = tpr.build().expect("Table_Press_Robot definition is valid");

        // ---------------- Unload_Table ----------------
        let mut unload = ActionDef::builder("Unload_Table")
            .role("table_sensor", TABLE_SENSOR)
            .role("table", TABLE)
            .role("robot_sensor", ROBOT_SENSOR)
            .role("robot", ROBOT)
            .graph(unload_table_graph())
            .interface([L_PLATE_SIGNAL, T_SENSOR_SIGNAL, A1_SENSOR_SIGNAL]);
        // Degraded sensors: the sensor lanes signal their device-specific
        // interface exceptions (distinct ε per role — §3.4 case 1); the
        // actuator lanes recover.
        for (role, verdict) in [
            ("table_sensor", Some(T_SENSOR_SIGNAL)),
            ("robot_sensor", Some(A1_SENSOR_SIGNAL)),
            ("table", None),
            ("robot", None),
        ] {
            let c = cell.clone();
            unload = unload.fallback_handler(role, move |hc| {
                let resolved = hc.handling().expect("in handler").clone();
                let name = resolved.name().to_owned();
                if name.contains("l_plate") || name.contains(L_PLATE_SIGNAL) || name == "plate_gone"
                {
                    return Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL)));
                }
                if resolved.is_undo() || resolved.is_failure() || resolved.is_universal() {
                    return Ok(HandlerVerdict::Undo);
                }
                // Sensor-degradation family: repair what this lane owns,
                // then signal the per-role interface exception (sensors) or
                // recover (actuators).
                if verdict == Some(A1_SENSOR_SIGNAL) {
                    hc.update(&c.robot, |r| {
                        r.repair(crate::faults::DeviceFault::SensorStuck);
                    })?;
                } else if verdict == Some(T_SENSOR_SIGNAL) {
                    hc.update(&c.table, |t| {
                        t.repair(crate::faults::DeviceFault::SensorStuck);
                    })?;
                }
                match verdict {
                    Some(sig) => Ok(HandlerVerdict::Signal(ExceptionId::new(sig))),
                    None => Ok(HandlerVerdict::Recovered),
                }
            });
        }
        let unload = unload.build().expect("Unload_Table definition is valid");

        // ---------------- Move_Loaded_Table (Figure 7) ----------------
        let mlt = build_move_loaded_table(cell, op);

        // ---------------- Arm-1 micro-actions ----------------
        // Shared recovery policy: a lost plate is signalled as L_PLATE,
        // sensor trouble as NCS_FAIL; anything else requests µ.
        let micro_policy = |hc: &mut Ctx| {
            let resolved = hc.handling().expect("in handler").clone();
            match resolved.name() {
                "l_plate" => Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL))),
                "s_stuck" | "sensor_failure_or_lplate" | "table_and_sensor_failures" => {
                    Ok(HandlerVerdict::Signal(ExceptionId::new(NCS_FAIL_SIGNAL)))
                }
                _ => Ok(HandlerVerdict::Undo),
            }
        };
        let mut extend_arm1 = ActionDef::builder("Extend_Arm1")
            .role("robot_sensor", ROBOT_SENSOR)
            .role("robot", ROBOT)
            .graph(move_loaded_table_graph())
            .interface([L_PLATE_SIGNAL, NCS_FAIL_SIGNAL]);
        for role in ["robot_sensor", "robot"] {
            extend_arm1 = extend_arm1.fallback_handler(role, micro_policy);
        }
        let extend_arm1 = extend_arm1
            .build()
            .expect("Extend_Arm1 definition is valid");

        let mut grab = ActionDef::builder("Grab_Plate_From_Table")
            .role("table_sensor", TABLE_SENSOR)
            .role("table", TABLE)
            .role("robot_sensor", ROBOT_SENSOR)
            .role("robot", ROBOT)
            .graph(move_loaded_table_graph())
            .interface([L_PLATE_SIGNAL, NCS_FAIL_SIGNAL]);
        for role in ["table_sensor", "table", "robot_sensor", "robot"] {
            grab = grab.fallback_handler(role, micro_policy);
        }
        let grab = grab
            .build()
            .expect("Grab_Plate_From_Table definition is valid");

        let mut retract_arm1 = ActionDef::builder("Retract_Arm1")
            .role("robot_sensor", ROBOT_SENSOR)
            .role("robot", ROBOT)
            .graph(move_loaded_table_graph())
            .interface([L_PLATE_SIGNAL, NCS_FAIL_SIGNAL]);
        for role in ["robot_sensor", "robot"] {
            retract_arm1 = retract_arm1.fallback_handler(role, micro_policy);
        }
        let retract_arm1 = retract_arm1
            .build()
            .expect("Retract_Arm1 definition is valid");

        // ---------------- Pressing ----------------
        let mut pressing = ActionDef::builder("Pressing")
            .role("robot_sensor", ROBOT_SENSOR)
            .role("robot", ROBOT)
            .role("press_sensor", PRESS_SENSOR)
            .role("press", PRESS)
            .graph(move_loaded_table_graph())
            .interface([L_PLATE_SIGNAL]);
        for role in ["robot_sensor", "robot", "press_sensor", "press"] {
            let c = cell.clone();
            let repairs = role == "press";
            pressing =
                pressing.fallback_handler(role, move |hc| pressing_recovery(hc, &c, repairs));
        }
        let pressing = pressing.build().expect("Pressing definition is valid");

        // ---------------- Move_Unloaded_Table_Back ----------------
        let mut back = ActionDef::builder("Move_Unloaded_Table_Back")
            .role("table_sensor", TABLE_SENSOR)
            .role("table", TABLE)
            .graph(move_loaded_table_graph())
            .interface([NCS_FAIL_SIGNAL]);
        for role in ["table_sensor", "table"] {
            let c = cell.clone();
            let op_time = op;
            back = back.fallback_handler(role, move |hc| {
                mlt_style_recovery(hc, &c, op_time, role_is_table(role), MotionGoal::ToBelt)
            });
        }
        let back = back
            .build()
            .expect("Move_Unloaded_Table_Back definition is valid");

        // ---------------- Remove_Plate ----------------
        let mut remove = ActionDef::builder("Remove_Plate")
            .role("robot_sensor", ROBOT_SENSOR)
            .role("robot", ROBOT)
            .role("press_sensor", PRESS_SENSOR)
            .role("press", PRESS)
            .graph(move_loaded_table_graph())
            .interface([L_PLATE_SIGNAL, A1_SENSOR_SIGNAL]);
        for role in ["robot_sensor", "robot", "press_sensor", "press"] {
            let c = cell.clone();
            let repairs = role == "robot";
            remove =
                remove.fallback_handler(role, move |hc| remove_plate_recovery(hc, &c, repairs));
        }
        let remove = remove.build().expect("Remove_Plate definition is valid");

        Definitions {
            tpr,
            unload,
            mlt,
            extend_arm1,
            grab,
            retract_arm1,
            pressing,
            back,
            remove,
        }
    }

    // ---------------- per-thread cycle bodies ----------------

    fn run_cycle_table_sensor(
        &self,
        ctx: &mut Ctx,
        cell: &ProductionCell,
        op: VirtualDuration,
    ) -> Step {
        let d = self.clone();
        let c = cell.clone();
        ctx.enter(&self.tpr, "table_sensor", move |rc| {
            rc.enter(&d.unload, "table_sensor", |uc| {
                uc.enter(&d.mlt, "table_sensor", |mc| sensor_verify_table(mc, &c, op))?;
                uc.enter(&d.grab, "table_sensor", |gc| gc.work(op))?;
                Ok(())
            })?;
            rc.enter(&d.back, "table_sensor", |mc| {
                sensor_verify_table_back(mc, &c, op)
            })?;
            Ok(())
        })
        .map(|_| ())
    }

    fn run_cycle_table(&self, ctx: &mut Ctx, cell: &ProductionCell, op: VirtualDuration) -> Step {
        if std::env::var_os("CAA_TRACE").is_some() {
            eprintln!(
                "[cycle start] table committed: {:?}, feed len {}",
                cell.table.committed(),
                cell.feed.committed().len()
            );
        }
        let d = self.clone();
        let c = cell.clone();
        ctx.enter(&self.tpr, "table", move |rc| {
            // Step 1: the environment's blank supplier adds a blank (the
            // insertion light is green between cycles). The feed belt
            // assigns the id and counts the insertion atomically.
            let plate = dev_op(rc, &c.feed, op, |f| f.insert_new_blank())?;
            rc.update(&c.metrics, |m| m.inserted = plate.id)?;
            // Step 2–3: feed belt conveys the blank; the table loads it.
            let plate = dev_op(rc, &c.feed, op, |f| f.convey_to_table())?;
            if let Some(plate) = plate {
                dev_op(rc, &c.table, op, |t| t.load(plate))?;
            }
            rc.enter(&d.unload, "table", |uc| {
                uc.enter(&d.mlt, "table", |mc| {
                    dev_op(mc, &c.table, op, |t| t.rotate_to_robot())?;
                    dev_op(mc, &c.table, op, |t| t.lift())?;
                    // Ask the table sensor to verify the final position.
                    mc.send_to_role("table_sensor", "verify", ())?;
                    let _ok = mc.recv_app()?;
                    Ok(())
                })?;
                // Handoff: the robot grabs the plate off the table.
                uc.enter(&d.grab, "table", |gc| {
                    let plate = dev_op(gc, &c.table, op, |t| t.take_plate())?;
                    gc.send_to_role("robot", "plate", plate)?;
                    Ok(())
                })?;
                Ok(())
            })?;
            rc.enter(&d.back, "table", |mc| {
                dev_op(mc, &c.table, op, |t| t.lower())?;
                dev_op(mc, &c.table, op, |t| t.rotate_to_belt())?;
                mc.send_to_role("table_sensor", "verify", ())?;
                let _ok = mc.recv_app()?;
                Ok(())
            })?;
            Ok(())
        })
        .map(|_| ())
    }

    fn run_cycle_robot_sensor(
        &self,
        ctx: &mut Ctx,
        cell: &ProductionCell,
        op: VirtualDuration,
    ) -> Step {
        let d = self.clone();
        let c = cell.clone();
        ctx.enter(&self.tpr, "robot_sensor", move |rc| {
            rc.enter(&d.unload, "robot_sensor", |uc| {
                uc.enter(&d.extend_arm1, "robot_sensor", |ec| {
                    sensor_verify_arm1(ec, &c, op, true)
                })?;
                uc.enter(&d.grab, "robot_sensor", |gc| gc.work(op))?;
                uc.enter(&d.retract_arm1, "robot_sensor", |ec| {
                    sensor_verify_arm1(ec, &c, op, false)
                })?;
                Ok(())
            })?;
            rc.enter(&d.pressing, "robot_sensor", |pc| pc.work(op))?;
            rc.enter(&d.remove, "robot_sensor", |pc| pc.work(op))?;
            Ok(())
        })
        .map(|_| ())
    }

    fn run_cycle_robot(&self, ctx: &mut Ctx, cell: &ProductionCell, op: VirtualDuration) -> Step {
        let d = self.clone();
        let c = cell.clone();
        ctx.enter(&self.tpr, "robot", move |rc| {
            rc.enter(&d.unload, "robot", |uc| {
                uc.enter(&d.extend_arm1, "robot", |ec| {
                    dev_op(ec, &c.robot, op, |r| r.extend_arm1())
                })?;
                uc.enter(&d.grab, "robot", |gc| {
                    let msg = gc.recv_app()?;
                    let plate: Plate = msg.payload.downcast().expect("plate payload");
                    dev_op(gc, &c.robot, op, |r| r.arm1_grab(plate))?;
                    Ok(())
                })?;
                uc.enter(&d.retract_arm1, "robot", |ec| {
                    dev_op(ec, &c.robot, op, |r| r.retract_arm1())
                })?;
                Ok(())
            })?;
            rc.enter(&d.pressing, "robot", |pc| {
                // Step 4: arm 1 places the blank into the press.
                let plate = dev_op(pc, &c.robot, op, |r| r.arm1_release())?;
                pc.send_to_role("press", "insert", plate)?;
                // Confirm both arms are clear before the press forges.
                let arms_clear = pc.read(&c.robot, |r| !r.arm1.extended && !r.arm2.extended)?;
                pc.send_to_role("press", "arms_clear", arms_clear)?;
                Ok(())
            })?;
            rc.enter(&d.remove, "robot", |pc| {
                // Step 6: arm 2 takes the forged plate to the deposit belt.
                dev_op(pc, &c.robot, op, |r| r.extend_arm2())?;
                pc.send_to_role("press", "remove", ())?;
                let msg = pc.recv_app()?;
                let plate: Plate = msg.payload.downcast().expect("plate payload");
                dev_op(pc, &c.robot, op, |r| r.arm2_grab(plate))?;
                dev_op(pc, &c.robot, op, |r| r.retract_arm2())?;
                dev_op(pc, &c.robot, op, |r| r.rotate_to_deposit())?;
                let plate = dev_op(pc, &c.robot, op, |r| r.arm2_release())?;
                dev_op(pc, &c.deposit, op, |b| b.accept(plate))?;
                let delivered = dev_op(pc, &c.deposit, op, |b| b.forward())?;
                pc.update(&c.metrics, |m| m.delivered += delivered as u32)?;
                dev_op(pc, &c.robot, op, |r| r.rotate_to_table())?;
                Ok(())
            })?;
            Ok(())
        })
        .map(|_| ())
    }

    fn run_cycle_press_sensor(
        &self,
        ctx: &mut Ctx,
        cell: &ProductionCell,
        op: VirtualDuration,
    ) -> Step {
        let d = self.clone();
        let c = cell.clone();
        ctx.enter(&self.tpr, "press_sensor", move |rc| {
            rc.enter(&d.pressing, "press_sensor", |pc| {
                pc.work(op)?;
                // Sense the press state after forging.
                let _has_plate = pc.read(&c.press, |p| p.plate().is_some())?;
                Ok(())
            })?;
            rc.enter(&d.remove, "press_sensor", |pc| pc.work(op))?;
            Ok(())
        })
        .map(|_| ())
    }

    fn run_cycle_press(&self, ctx: &mut Ctx, cell: &ProductionCell, op: VirtualDuration) -> Step {
        let d = self.clone();
        let c = cell.clone();
        ctx.enter(&self.tpr, "press", move |rc| {
            rc.enter(&d.pressing, "press", |pc| {
                let msg = pc.recv_app()?;
                let plate: Plate = msg.payload.downcast().expect("plate payload");
                dev_op(pc, &c.press, op, |p| p.insert(plate))?;
                let clear = pc.recv_app()?;
                let arms_clear: bool = clear.payload.downcast().expect("bool payload");
                if !arms_clear {
                    // Safety requirement: never forge with an arm inside.
                    pc.raise(Exception::new("cs_fault").with_detail("arm inside press"))?;
                }
                // Step 5: forge.
                dev_op(pc, &c.press, op, |p| p.forge())?;
                Ok(())
            })?;
            rc.enter(&d.remove, "press", |pc| {
                let _req = pc.recv_app()?;
                let plate = dev_op(pc, &c.press, op, |p| p.remove())?;
                pc.send_to_role("robot", "plate", plate)?;
                Ok(())
            })?;
            Ok(())
        })
        .map(|_| ())
    }
}

fn role_is_table(role: &str) -> bool {
    role == "table"
}

/// Builds the Move_Loaded_Table definition with the Figure 7 graph and the
/// recovery policy of §4.
fn build_move_loaded_table(cell: &ProductionCell, op: VirtualDuration) -> ActionDef {
    let mut mlt = ActionDef::builder("Move_Loaded_Table")
        .role("table_sensor", threads::TABLE_SENSOR)
        .role("table", threads::TABLE)
        .graph(move_loaded_table_graph())
        .interface([L_PLATE_SIGNAL, NCS_FAIL_SIGNAL]);
    for role in ["table_sensor", "table"] {
        let c = cell.clone();
        let is_table = role_is_table(role);
        mlt = mlt.fallback_handler(role, move |hc| {
            mlt_style_recovery(hc, &c, op, is_table, MotionGoal::ToRobot)
        });
    }
    mlt.build().expect("Move_Loaded_Table definition is valid")
}

/// Which way the interrupted table motion was headed.
#[derive(Clone, Copy, PartialEq)]
enum MotionGoal {
    /// Move_Loaded_Table: rotated to the robot and lifted.
    ToRobot,
    /// Move_Unloaded_Table_Back: lowered and rotated to the belt.
    ToBelt,
}

/// The shared recovery policy for the table-motion actions:
///
/// * motor failures — forward recovery: repair the motor(s) and finish the
///   motion, then exit with success;
/// * sensor failures — repair and signal `NCS_FAIL` (degraded);
/// * lost plate — signal `L_PLATE`;
/// * anything else (universal included) — request µ.
fn mlt_style_recovery(
    hc: &mut Ctx,
    cell: &ProductionCell,
    op: VirtualDuration,
    is_table_role: bool,
    goal: MotionGoal,
) -> Step<HandlerVerdict> {
    let resolved = hc.handling().expect("in handler").clone();
    let name = resolved.name().to_owned();
    let motorish = [
        "vm_stop",
        "rm_stop",
        "vm_nmove",
        "rm_nmove",
        "dual_motor_failures",
    ]
    .contains(&name.as_str());
    let sensorish = [
        "s_stuck",
        "table_and_sensor_failures",
        "sensor_failure_or_lplate",
    ]
    .contains(&name.as_str());

    if name == "l_plate" {
        return Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL)));
    }
    if motorish || sensorish {
        if is_table_role {
            // Repair every implicated part and complete the motion the
            // action was responsible for.
            hc.work(op)?;
            hc.update(&cell.table, |t| {
                for f in crate::faults::DeviceFault::ALL {
                    t.repair(f);
                }
            })?;
            if name != "sensor_failure_or_lplate" {
                // Finish the interrupted motion (idempotent).
                hc.work(op)?;
                let r = hc.update(&cell.table, |t| {
                    match goal {
                        MotionGoal::ToRobot => {
                            if t.angle != TableAngle::Robot {
                                t.rotate_to_robot()?;
                            }
                            if !t.lifted {
                                t.lift()?;
                            }
                        }
                        MotionGoal::ToBelt => {
                            if t.lifted {
                                t.lower()?;
                            }
                            if t.angle != TableAngle::Belt {
                                t.rotate_to_belt()?;
                            }
                        }
                    }
                    Ok::<_, crate::faults::DeviceFault>(())
                })?;
                if r.is_err() {
                    // Repair did not hold; give up on this plate.
                    return Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL)));
                }
            }
        }
        if sensorish && name != "sensor_failure_or_lplate" {
            return Ok(HandlerVerdict::Signal(ExceptionId::new(NCS_FAIL_SIGNAL)));
        }
        if name == "sensor_failure_or_lplate" {
            return Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL)));
        }
        return Ok(HandlerVerdict::Recovered);
    }
    Ok(HandlerVerdict::Undo)
}

/// Forward recovery for the Pressing action: the designated (press) lane
/// makes sure the blank ends up forged inside the press — retrying the
/// forge, or fetching the blank from arm 1 if the insertion failed. If the
/// blank is nowhere to be found it was lost in transit: signal `L_PLATE`.
fn pressing_recovery(
    hc: &mut Ctx,
    cell: &ProductionCell,
    is_press_role: bool,
) -> Step<HandlerVerdict> {
    let resolved = hc.handling().expect("in handler").clone();
    if resolved.name() == "l_plate" {
        return Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL)));
    }
    if resolved.is_undo() || resolved.is_failure() {
        return Ok(HandlerVerdict::Fail); // forging cannot be undone
    }
    if !is_press_role {
        return Ok(HandlerVerdict::Recovered);
    }
    // Locate the blank and finish the forging.
    hc.work(VirtualDuration::from_millis(50))?;
    let press_state = hc.read(&cell.press, |p| p.plate())?;
    let outcome = match press_state {
        Some(plate) if plate.forged => Ok(()),
        Some(_) => hc.update(&cell.press, |p| p.forge())?.map(|_| ()),
        None => {
            let held = hc.update(&cell.robot, |r| r.arm1_release().ok())?;
            match held {
                Some(plate) => hc.update(&cell.press, |p| {
                    p.insert(plate)?;
                    p.forge()
                })?,
                None => Err(crate::faults::DeviceFault::LostPlate),
            }
        }
    };
    match outcome {
        Ok(()) => Ok(HandlerVerdict::Recovered),
        Err(_) => Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL))),
    }
}

/// Forward recovery for the Remove_Plate action: the designated (robot)
/// lane tracks the *current* plate (its id equals the metrics' inserted
/// counter) and walks it the rest of the way to the environment; if it is
/// nowhere — not delivered, not in the press, not on an arm, not on the
/// belt — it was lost in transit and `L_PLATE` is signalled.
fn remove_plate_recovery(
    hc: &mut Ctx,
    cell: &ProductionCell,
    is_robot_role: bool,
) -> Step<HandlerVerdict> {
    let resolved = hc.handling().expect("in handler").clone();
    if resolved.name() == "l_plate" {
        return Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL)));
    }
    if resolved.is_undo() || resolved.is_failure() {
        return Ok(HandlerVerdict::Fail);
    }
    if !is_robot_role {
        return Ok(HandlerVerdict::Recovered);
    }
    hc.work(VirtualDuration::from_millis(50))?;
    let current_id = hc.read(&cell.feed, |f| f.total_inserted())?;
    let already_delivered = hc.read(&cell.deposit, |d| {
        d.delivered().iter().any(|p| p.id == current_id)
    })?;
    if already_delivered {
        return Ok(HandlerVerdict::Recovered);
    }
    // Collect the plate from wherever it stalled.
    let mut plate = hc.update(&cell.press, |p| p.remove().ok())?;
    if plate.is_none() {
        plate = hc.update(&cell.robot, |r| r.arm2_release().ok())?;
    }
    if let Some(plate) = plate.filter(|p| p.forged) {
        let accepted = hc.update(&cell.deposit, |d| d.accept(plate))?;
        if accepted.is_err() {
            return Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL)));
        }
    }
    // Tidy the robot for the next cycle.
    hc.update(&cell.robot, |r| {
        if r.arm2.extended {
            let _ = r.retract_arm2();
        }
        let _ = r.rotate_to_table();
    })?;
    // Forward whatever waits on the belt.
    let forwarded = hc.update(&cell.deposit, |d| d.forward().unwrap_or(0))?;
    if forwarded > 0 {
        hc.update(&cell.metrics, |m| m.delivered += forwarded as u32)?;
        return Ok(HandlerVerdict::Recovered);
    }
    // Not delivered and nowhere to be found: lost in transit.
    Ok(HandlerVerdict::Signal(ExceptionId::new(L_PLATE_SIGNAL)))
}

/// The outermost action's recovery: each lane clears the device it owns
/// (counting every abandoned plate as lost), repairs sensors/motors, and
/// the table lane classifies the cycle in the metrics.
fn tpr_repair(hc: &mut Ctx, cell: &ProductionCell, is_table_role: bool) -> Step<HandlerVerdict> {
    let resolved = hc.handling().expect("in handler").clone();
    let name = resolved.name().to_owned();
    let thread = hc.thread_id().as_u32();

    // Clear the abandoned work piece from whatever this lane controls.
    // Clearing is an operator-level (force) reset: the outermost recovery
    // models physical intervention, which a scripted device fault cannot
    // refuse — otherwise a plate written off as lost would linger inside a
    // stuck device and break the conservation audit (found by the harness's
    // byte-replay sweeps once object interleavings became deterministic).
    if is_table_role {
        hc.update(&cell.table, |t| {
            let _ = t.force_clear();
            for f in crate::faults::DeviceFault::ALL {
                t.repair(f);
            }
            if t.lifted {
                let _ = t.lower();
            }
            if t.angle != TableAngle::Belt {
                let _ = t.rotate_to_belt();
            }
        })?;
        // Drop any blank still waiting on the feed belt for this cycle.
        hc.update(&cell.feed, |f| {
            let _ = f.force_clear();
        })?;
    } else if thread == threads::ROBOT {
        hc.update(&cell.robot, |r| {
            let _ = r.force_clear_arms();
            r.repair(crate::faults::DeviceFault::SensorStuck);
            if r.arm1.extended {
                let _ = r.retract_arm1();
            }
            if r.arm2.extended {
                let _ = r.retract_arm2();
            }
            let _ = r.rotate_to_table();
        })?;
    } else if thread == threads::PRESS {
        hc.update(&cell.press, |p| {
            let _ = p.force_clear();
        })?;
    } else if thread == threads::ROBOT_SENSOR {
        hc.update(&cell.robot, |r| {
            r.repair(crate::faults::DeviceFault::SensorStuck);
        })?;
    } else if thread == threads::TABLE_SENSOR {
        hc.update(&cell.table, |t| {
            t.repair(crate::faults::DeviceFault::SensorStuck);
        })?;
    }

    if is_table_role {
        // Recovery at the outermost action abandons the cycle: its blank is
        // written off unless it already reached the environment. This is
        // the single source of truth for the lost count (the lanes above
        // only clear devices). A forged plate stranded on the deposit
        // backlog is delivered, not lost — force-forward it (bypassing the
        // belt's fault script, like every other force reset here) before
        // the write-off check, or the audit would count it both lost and
        // in-flight.
        let forwarded = hc.update(&cell.deposit, |d| d.force_forward())?;
        if forwarded > 0 {
            hc.update(&cell.metrics, |m| m.delivered += forwarded as u32)?;
        }
        let current = hc.read(&cell.feed, |f| f.total_inserted())?;
        let delivered = hc.read(&cell.deposit, |d| {
            d.delivered().iter().any(|p| p.id == current)
        })?;
        hc.update(&cell.metrics, |m| {
            if !delivered {
                m.lost_plates += 1;
            }
            if name.contains("SENSOR")
                || name == "degraded_sensors"
                || name.contains(NCS_FAIL_SIGNAL)
            {
                m.degraded_sensor_cycles += 1;
            } else if resolved.is_undo() || resolved.is_failure() || resolved.is_universal() {
                m.failed_cycles += 1;
            }
            m.recovered_cycles += 1;
        })?;
    }
    Ok(HandlerVerdict::Recovered)
}

/// Sensor-lane body for Move_Loaded_Table: wait for the actuator's request
/// and verify the table reached the robot position.
fn sensor_verify_table(mc: &mut Ctx, cell: &ProductionCell, op: VirtualDuration) -> Step {
    let _req = mc.recv_app()?;
    mc.work(op)?;
    let sensed = mc.read(&cell.table, |t| t.sensed_angle())?;
    match sensed {
        None => {
            mc.raise(Exception::new("s_stuck").with_detail("table position sensor stuck at 0"))?;
            unreachable!("raise always transfers control")
        }
        Some(angle) => {
            if angle != TableAngle::Robot {
                mc.raise(Exception::new("cs_fault").with_detail("table missed robot position"))?;
            }
            mc.send_to_role("table", "verified", ())?;
            Ok(())
        }
    }
}

/// Sensor-lane body for Move_Unloaded_Table_Back.
fn sensor_verify_table_back(mc: &mut Ctx, cell: &ProductionCell, op: VirtualDuration) -> Step {
    let _req = mc.recv_app()?;
    mc.work(op)?;
    let sensed = mc.read(&cell.table, |t| t.sensed_angle())?;
    match sensed {
        None => {
            mc.raise(Exception::new("s_stuck"))?;
            unreachable!("raise always transfers control")
        }
        Some(angle) => {
            if angle != TableAngle::Belt {
                mc.raise(Exception::new("cs_fault").with_detail("table missed belt position"))?;
            }
            mc.send_to_role("table", "verified", ())?;
            Ok(())
        }
    }
}

/// Sensor-lane body for the arm-1 micro-actions.
fn sensor_verify_arm1(
    ec: &mut Ctx,
    cell: &ProductionCell,
    op: VirtualDuration,
    expect_extended: bool,
) -> Step {
    ec.work(op)?;
    let (stuck, extended) = ec.read(&cell.robot, |r| (r.sensor_stuck, r.arm1.extended))?;
    if stuck {
        ec.raise(Exception::new("s_stuck").with_detail("arm1 sensor stuck"))?;
    }
    if extended != expect_extended {
        // Give the actuator one more op's worth of time, then re-check.
        ec.work(op)?;
        let extended = ec.read(&cell.robot, |r| r.arm1.extended)?;
        if extended != expect_extended {
            ec.raise(Exception::new("cs_fault").with_detail("arm1 did not reach position"))?;
        }
    }
    Ok(())
}
