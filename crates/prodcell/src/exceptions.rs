//! Exception graphs of the production-cell controller (§4, Figure 7).

use caa_core::exception::ExceptionId;
use caa_exgraph::{ExceptionGraph, ExceptionGraphBuilder};

/// Interface exception: lost plate, signalled from Move_Loaded_Table to
/// Unload_Table and upward (§4).
pub const L_PLATE_SIGNAL: &str = "L_PLATE";
/// Interface exception: non-critical sensor failure.
pub const NCS_FAIL_SIGNAL: &str = "NCS_FAIL";
/// Interface exception: non-critical table sensor failure, signalled to the
/// outermost Table_Press_Robot action.
pub const T_SENSOR_SIGNAL: &str = "T_SENSOR";
/// Interface exception: one arm-1 sensor failure, signalled to the
/// outermost Table_Press_Robot action.
pub const A1_SENSOR_SIGNAL: &str = "A1_SENSOR";

/// The exception graph of the Move_Loaded_Table action, exactly as drawn in
/// Figure 7: nine primitive exceptions, five resolving exceptions,
/// "permitting no more than two exceptions concurrently raised" — other
/// combinations resolve to the universal exception.
///
/// # Examples
///
/// ```
/// use caa_prodcell::move_loaded_table_graph;
/// use caa_core::exception::ExceptionId;
///
/// let g = move_loaded_table_graph();
/// // "when both vertical and rotation motors fail, the exception graph
/// // will be searched and the resolving exception dual_motor_failures will
/// // be raised".
/// let raised = [ExceptionId::new("vm_stop"), ExceptionId::new("rm_stop")];
/// assert_eq!(g.resolve(&raised), ExceptionId::new("dual_motor_failures"));
/// // Combinations beyond the graph's coverage ("other undefined
/// // exceptions") resolve to the universal exception:
/// let uncovered = [
///     ExceptionId::new("vm_stop"),
///     ExceptionId::new("l_plate"),
///     ExceptionId::new("rt_exc"),
/// ];
/// assert!(g.resolve(&uncovered).is_universal());
/// ```
#[must_use]
pub fn move_loaded_table_graph() -> ExceptionGraph {
    ExceptionGraphBuilder::new()
        // Level-1 resolving exceptions of Figure 7.
        .resolves(
            "dual_motor_failures",
            ["vm_stop", "rm_stop", "vm_nmove", "rm_nmove"],
        )
        .resolves(
            "table_and_sensor_failures",
            ["vm_stop", "rm_stop", "vm_nmove", "rm_nmove", "s_stuck"],
        )
        .resolves("sensor_failure_or_lplate", ["s_stuck", "l_plate"])
        .resolves("two_unrelated_exceptions", ["l_plate", "cs_fault"])
        .resolves(
            "other_undefined_exceptions",
            ["cs_fault", "l_mes", "rt_exc"],
        )
        .build()
        .expect("Figure 7 graph is valid")
}

/// Exception graph for the Unload_Table action: its internal exceptions are
/// the exceptions signalled by its nested actions (L_PLATE, NCS_FAIL, µ, ƒ)
/// plus its own robot/table faults (§4: "These exceptions … constitute the
/// internal exceptions of the action Unload_Table").
#[must_use]
pub fn unload_table_graph() -> ExceptionGraph {
    ExceptionGraphBuilder::new()
        .resolves("arm_or_table_fault", ["s_stuck", "cs_fault", "rt_exc"])
        .resolves("plate_gone", [L_PLATE_SIGNAL, "l_plate"])
        .resolves("sensor_degraded", [NCS_FAIL_SIGNAL, "s_stuck"])
        .exception(ExceptionId::undo())
        .exception(ExceptionId::failure())
        .build()
        .expect("Unload_Table graph is valid")
}

/// Exception graph for the outermost Table_Press_Robot action: covers the
/// exceptions its nested actions may signal (T_SENSOR, A1_SENSOR, L_PLATE,
/// µ, ƒ) together with press faults.
#[must_use]
pub fn table_press_robot_graph() -> ExceptionGraph {
    ExceptionGraphBuilder::new()
        .resolves(
            "degraded_sensors",
            [T_SENSOR_SIGNAL, A1_SENSOR_SIGNAL, NCS_FAIL_SIGNAL],
        )
        .resolves("lost_workpiece", [L_PLATE_SIGNAL, "l_plate"])
        .resolves("press_fault", ["cs_fault", "rt_exc", "l_mes"])
        .exception(ExceptionId::undo())
        .exception(ExceptionId::failure())
        .build()
        .expect("Table_Press_Robot graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DeviceFault;

    #[test]
    fn figure7_has_nine_primitives() {
        let g = move_loaded_table_graph();
        let prims: Vec<&str> = g.primitives().map(ExceptionId::name).collect();
        assert_eq!(prims.len(), 9);
        for f in DeviceFault::ALL {
            assert!(
                prims.contains(&f.exception_name()),
                "{f} missing from the graph"
            );
        }
    }

    #[test]
    fn figure7_pairs_resolve_as_drawn() {
        let g = move_loaded_table_graph();
        let resolve2 = |a: &str, b: &str| {
            g.resolve(&[ExceptionId::new(a), ExceptionId::new(b)])
                .name()
                .to_owned()
        };
        assert_eq!(resolve2("vm_stop", "rm_stop"), "dual_motor_failures");
        assert_eq!(resolve2("vm_nmove", "rm_nmove"), "dual_motor_failures");
        assert_eq!(resolve2("vm_stop", "s_stuck"), "table_and_sensor_failures");
        assert_eq!(resolve2("s_stuck", "l_plate"), "sensor_failure_or_lplate");
        assert_eq!(resolve2("l_plate", "cs_fault"), "two_unrelated_exceptions");
        assert_eq!(resolve2("l_mes", "rt_exc"), "other_undefined_exceptions");
    }

    #[test]
    fn figure7_uncovered_pairs_go_universal() {
        let g = move_loaded_table_graph();
        // vm_stop together with rt_exc is not covered by any resolving
        // node in Figure 7.
        let raised = [ExceptionId::new("vm_stop"), ExceptionId::new("rt_exc")];
        assert!(g.resolve(&raised).is_universal());
    }

    #[test]
    fn single_faults_resolve_to_themselves() {
        let g = move_loaded_table_graph();
        for f in DeviceFault::ALL {
            assert_eq!(g.resolve(&[f.exception()]), f.exception());
        }
    }

    #[test]
    fn upper_graphs_cover_signalled_exceptions() {
        let unload = unload_table_graph();
        assert!(unload.contains(&ExceptionId::new(L_PLATE_SIGNAL)));
        assert!(unload.contains(&ExceptionId::undo()));
        assert!(unload.contains(&ExceptionId::failure()));
        let tpr = table_press_robot_graph();
        assert!(tpr.contains(&ExceptionId::new(T_SENSOR_SIGNAL)));
        assert!(tpr.contains(&ExceptionId::new(A1_SENSOR_SIGNAL)));
        // µ signalled by a nested action resolves within the outer graph.
        assert_eq!(tpr.resolve(&[ExceptionId::undo()]), ExceptionId::undo());
    }

    #[test]
    fn dot_export_of_figure7_mentions_all_levels() {
        let dot = move_loaded_table_graph().to_dot();
        assert!(dot.contains("dual_motor_failures"));
        assert!(dot.contains("vm_stop"));
        assert!(dot.contains("doubleoctagon"), "universal root rendered");
    }
}
