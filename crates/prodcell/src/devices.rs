//! Device state machines of the FZI production cell (§4, Figure 5).
//!
//! "The production cell consists of six devices: two conveyor belts — feed
//! belt and deposit belt, an elevating rotary table, a press and a rotary
//! robot that has two orthogonal extendible arms equipped with
//! electromagnet." Each device here is a plain, cloneable state machine so
//! it can live inside a transactional
//! [`SharedObject`](caa_runtime::SharedObject): controller actions mutate
//! working copies that commit or roll back with the CA action.
//!
//! Every mutating operation consults the device's fault script (see
//! [`crate::FaultScript`]); a
//! scheduled fault makes the operation fail with the corresponding
//! primitive exception of Figure 7 and applies its physical effect.

use crate::faults::{DeviceFault, ScriptHandle};

/// A metal blank travelling through the cell; forged by the press.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Plate {
    /// Identity assigned by the environment's blank supplier.
    pub id: u32,
    /// Whether the press has forged this plate.
    pub forged: bool,
}

impl Plate {
    /// A fresh, unforged blank.
    #[must_use]
    pub fn blank(id: u32) -> Self {
        Plate { id, forged: false }
    }
}

/// Outcome of one device operation.
pub type DeviceResult<T = ()> = Result<T, DeviceFault>;

/// Rotation positions of the elevating rotary table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableAngle {
    /// Aligned with the feed belt (loading position).
    Belt,
    /// Aligned with the robot's arm 1 (unloading position).
    Robot,
}

/// The feed belt: carries blanks from the environment to the table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedBelt {
    items: Vec<Plate>,
    /// The "traffic light for insertion": green permits the environment to
    /// add a blank.
    pub light_green: bool,
    /// Blanks successfully inserted so far; doubles as the id source, so id
    /// assignment and the physical insertion are atomic within this object.
    total_inserted: u32,
    ops: u64,
    script: ScriptHandle,
}

impl FeedBelt {
    /// An empty belt with a green insertion light.
    #[must_use]
    pub fn new(script: impl Into<ScriptHandle>) -> Self {
        FeedBelt {
            items: Vec::new(),
            light_green: true,
            total_inserted: 0,
            ops: 0,
            script: script.into(),
        }
    }

    /// Blanks successfully inserted by the environment so far.
    #[must_use]
    pub fn total_inserted(&self) -> u32 {
        self.total_inserted
    }

    /// Number of blanks on the belt.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the belt is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The environment adds a blank (production-cycle step 1). Fails with a
    /// control-software fault when the light is red.
    pub fn insert_blank(&mut self, plate: Plate) -> DeviceResult {
        self.ops += 1;
        if let Some(f) = self.script.check(self.ops) {
            return Err(f);
        }
        if !self.light_green {
            return Err(DeviceFault::ControlSoftwareFault);
        }
        self.items.push(plate);
        self.total_inserted += 1;
        Ok(())
    }

    /// The environment adds a fresh blank, with the id assigned by the
    /// belt's own counter — insertion and accounting are atomic, so a fault
    /// cannot leave a counted-but-nonexistent (or uncounted) blank.
    pub fn insert_new_blank(&mut self) -> DeviceResult<Plate> {
        let plate = Plate::blank(self.total_inserted + 1);
        self.insert_blank(plate)?;
        Ok(plate)
    }

    /// Operator-level reset (outermost recovery): removes every blank from
    /// the belt, bypassing the fault script — a physical intervention
    /// cannot be blocked by a belt fault. Returns the removed blanks.
    pub fn force_clear(&mut self) -> Vec<Plate> {
        std::mem::take(&mut self.items)
    }

    /// Conveys the oldest blank to the table end (step 2); `None` when the
    /// belt is empty. A lost-plate fault drops the blank on the floor.
    pub fn convey_to_table(&mut self) -> DeviceResult<Option<Plate>> {
        self.ops += 1;
        match self.script.check(self.ops) {
            Some(DeviceFault::LostPlate) => {
                if !self.items.is_empty() {
                    self.items.remove(0);
                }
                Err(DeviceFault::LostPlate)
            }
            Some(f) => Err(f),
            None => {
                if self.items.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(self.items.remove(0)))
                }
            }
        }
    }
}

/// The elevating rotary table: rotates between belt and robot positions and
/// lifts the blank to the robot's grabbing height (steps 3 and 7').
#[derive(Debug, Clone, PartialEq)]
pub struct RotaryTable {
    /// Current rotation position.
    pub angle: TableAngle,
    /// Whether the table is lifted to the robot's height.
    pub lifted: bool,
    plate: Option<Plate>,
    /// Set when the vertical motor has failed and needs repair.
    pub vertical_motor_broken: bool,
    /// Set when the rotation motor has failed and needs repair.
    pub rotation_motor_broken: bool,
    /// Set when the position sensors are stuck at 0.
    pub sensor_stuck: bool,
    ops: u64,
    script: ScriptHandle,
}

impl RotaryTable {
    /// A healthy table at the belt position, lowered, empty.
    #[must_use]
    pub fn new(script: impl Into<ScriptHandle>) -> Self {
        RotaryTable {
            angle: TableAngle::Belt,
            lifted: false,
            plate: None,
            vertical_motor_broken: false,
            rotation_motor_broken: false,
            sensor_stuck: false,
            ops: 0,
            script: script.into(),
        }
    }

    /// The plate currently on the table, if any.
    #[must_use]
    pub fn plate(&self) -> Option<Plate> {
        self.plate
    }

    /// What the position sensor reports: `None` while stuck at 0 (§4's
    /// `s_stuck`).
    #[must_use]
    pub fn sensed_angle(&self) -> Option<TableAngle> {
        (!self.sensor_stuck).then_some(self.angle)
    }

    /// Loads a blank from the feed belt (must be lowered, at the belt).
    pub fn load(&mut self, plate: Plate) -> DeviceResult {
        self.step()?;
        if self.angle != TableAngle::Belt || self.lifted || self.plate.is_some() {
            return Err(DeviceFault::ControlSoftwareFault);
        }
        self.plate = Some(plate);
        Ok(())
    }

    /// Rotates toward the robot position (part of Move_Loaded_Table).
    pub fn rotate_to_robot(&mut self) -> DeviceResult {
        self.rotate(TableAngle::Robot)
    }

    /// Rotates back toward the belt (Move_Unloaded_Table_Back).
    pub fn rotate_to_belt(&mut self) -> DeviceResult {
        self.rotate(TableAngle::Belt)
    }

    fn rotate(&mut self, target: TableAngle) -> DeviceResult {
        self.step_rotation()?;
        self.angle = target;
        Ok(())
    }

    /// Lifts the table to the robot's height.
    pub fn lift(&mut self) -> DeviceResult {
        self.step_vertical()?;
        self.lifted = true;
        Ok(())
    }

    /// Lowers the table back to the belt's height.
    pub fn lower(&mut self) -> DeviceResult {
        self.step_vertical()?;
        self.lifted = false;
        Ok(())
    }

    /// Operator-level reset (outermost recovery): removes whatever plate is
    /// on the table, bypassing the fault script.
    pub fn force_clear(&mut self) -> Option<Plate> {
        self.plate.take()
    }

    /// The robot magnetizes the plate off the table.
    pub fn take_plate(&mut self) -> DeviceResult<Plate> {
        self.step()?;
        self.plate.take().ok_or(DeviceFault::LostPlate)
    }

    /// Forward recovery: repairs the effects of `fault` (the handler's
    /// "putting the objects into new correct states", Figure 1).
    pub fn repair(&mut self, fault: DeviceFault) {
        match fault {
            DeviceFault::VerticalMotorStop | DeviceFault::VerticalMotorNoMove => {
                self.vertical_motor_broken = false;
            }
            DeviceFault::RotationMotorStop | DeviceFault::RotationMotorNoMove => {
                self.rotation_motor_broken = false;
            }
            DeviceFault::SensorStuck => self.sensor_stuck = false,
            _ => {}
        }
    }

    fn step(&mut self) -> DeviceResult {
        self.ops += 1;
        match self.script.check(self.ops) {
            Some(DeviceFault::LostPlate) => {
                self.plate = None;
                Err(DeviceFault::LostPlate)
            }
            Some(DeviceFault::SensorStuck) => {
                self.sensor_stuck = true;
                Err(DeviceFault::SensorStuck)
            }
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    fn step_vertical(&mut self) -> DeviceResult {
        if self.vertical_motor_broken {
            return Err(DeviceFault::VerticalMotorNoMove);
        }
        match self.step() {
            Err(f @ (DeviceFault::VerticalMotorStop | DeviceFault::VerticalMotorNoMove)) => {
                self.vertical_motor_broken = true;
                Err(f)
            }
            other => other,
        }
    }

    fn step_rotation(&mut self) -> DeviceResult {
        if self.rotation_motor_broken {
            return Err(DeviceFault::RotationMotorNoMove);
        }
        match self.step() {
            Err(f @ (DeviceFault::RotationMotorStop | DeviceFault::RotationMotorNoMove)) => {
                self.rotation_motor_broken = true;
                Err(f)
            }
            other => other,
        }
    }
}

/// The press: forges a blank into a plate (step 5).
#[derive(Debug, Clone, PartialEq)]
pub struct Press {
    /// Whether the press is open (safe for arms).
    pub open: bool,
    plate: Option<Plate>,
    ops: u64,
    script: ScriptHandle,
    /// Count of completed forgings (metrics).
    pub forgings: u64,
}

impl Press {
    /// A healthy, open, empty press.
    #[must_use]
    pub fn new(script: impl Into<ScriptHandle>) -> Self {
        Press {
            open: true,
            plate: None,
            ops: 0,
            script: script.into(),
            forgings: 0,
        }
    }

    /// The plate inside the press, if any.
    #[must_use]
    pub fn plate(&self) -> Option<Plate> {
        self.plate
    }

    /// Arm 1 places a blank into the open press.
    pub fn insert(&mut self, plate: Plate) -> DeviceResult {
        self.step()?;
        if !self.open || self.plate.is_some() {
            return Err(DeviceFault::ControlSoftwareFault);
        }
        self.plate = Some(plate);
        Ok(())
    }

    /// Closes and forges, then reopens. The irreversible step: a forged
    /// plate cannot be un-forged (µ becomes ƒ if requested after this).
    pub fn forge(&mut self) -> DeviceResult {
        self.step()?;
        let plate = self
            .plate
            .as_mut()
            .ok_or(DeviceFault::ControlSoftwareFault)?;
        plate.forged = true;
        self.forgings += 1;
        Ok(())
    }

    /// Arm 2 removes the forged plate.
    pub fn remove(&mut self) -> DeviceResult<Plate> {
        self.step()?;
        self.plate.take().ok_or(DeviceFault::LostPlate)
    }

    /// Operator-level reset (outermost recovery): removes whatever plate is
    /// inside the press, bypassing the fault script — a stuck press cannot
    /// refuse a physical intervention.
    pub fn force_clear(&mut self) -> Option<Plate> {
        self.plate.take()
    }

    fn step(&mut self) -> DeviceResult {
        self.ops += 1;
        match self.script.check(self.ops) {
            Some(DeviceFault::LostPlate) => {
                self.plate = None;
                Err(DeviceFault::LostPlate)
            }
            Some(f) => Err(f),
            None => Ok(()),
        }
    }
}

/// One of the robot's two orthogonal extendible arms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Arm {
    /// Whether the arm is extended over its target.
    pub extended: bool,
    holding: Option<Plate>,
}

impl Arm {
    /// The plate held by the electromagnet, if any.
    #[must_use]
    pub fn holding(&self) -> Option<Plate> {
        self.holding
    }
}

/// Orientation of the rotary robot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobotAngle {
    /// Arm 1 toward the table, arm 2 toward the press.
    Arm1Table,
    /// Arm 1 toward the press, arm 2 toward the deposit belt.
    Arm2Deposit,
}

/// The two-armed rotary robot (steps 4 and 6).
#[derive(Debug, Clone, PartialEq)]
pub struct Robot {
    /// Current orientation.
    pub angle: RobotAngle,
    /// Arm 1 (table ↔ press).
    pub arm1: Arm,
    /// Arm 2 (press ↔ deposit belt).
    pub arm2: Arm,
    /// Set when an arm sensor is stuck.
    pub sensor_stuck: bool,
    ops: u64,
    script: ScriptHandle,
}

impl Robot {
    /// A healthy robot oriented toward the table, arms retracted.
    #[must_use]
    pub fn new(script: impl Into<ScriptHandle>) -> Self {
        Robot {
            angle: RobotAngle::Arm1Table,
            arm1: Arm::default(),
            arm2: Arm::default(),
            sensor_stuck: false,
            ops: 0,
            script: script.into(),
        }
    }

    /// Extends arm 1 over the table.
    pub fn extend_arm1(&mut self) -> DeviceResult {
        self.step()?;
        self.arm1.extended = true;
        Ok(())
    }

    /// Retracts arm 1.
    pub fn retract_arm1(&mut self) -> DeviceResult {
        self.step()?;
        self.arm1.extended = false;
        Ok(())
    }

    /// Arm 1's magnet picks the plate handed over by the table.
    pub fn arm1_grab(&mut self, plate: Plate) -> DeviceResult {
        self.step()?;
        if self.arm1.holding.is_some() {
            return Err(DeviceFault::ControlSoftwareFault);
        }
        self.arm1.holding = Some(plate);
        Ok(())
    }

    /// Arm 1 releases its plate (into the press).
    pub fn arm1_release(&mut self) -> DeviceResult<Plate> {
        self.step()?;
        self.arm1.holding.take().ok_or(DeviceFault::LostPlate)
    }

    /// Extends arm 2 into the press.
    pub fn extend_arm2(&mut self) -> DeviceResult {
        self.step()?;
        self.arm2.extended = true;
        Ok(())
    }

    /// Retracts arm 2.
    pub fn retract_arm2(&mut self) -> DeviceResult {
        self.step()?;
        self.arm2.extended = false;
        Ok(())
    }

    /// Arm 2's magnet picks the forged plate from the press.
    pub fn arm2_grab(&mut self, plate: Plate) -> DeviceResult {
        self.step()?;
        if self.arm2.holding.is_some() {
            return Err(DeviceFault::ControlSoftwareFault);
        }
        self.arm2.holding = Some(plate);
        Ok(())
    }

    /// Arm 2 releases its plate (onto the deposit belt).
    pub fn arm2_release(&mut self) -> DeviceResult<Plate> {
        self.step()?;
        self.arm2.holding.take().ok_or(DeviceFault::LostPlate)
    }

    /// Rotates so arm 2 faces the deposit belt.
    pub fn rotate_to_deposit(&mut self) -> DeviceResult {
        self.step()?;
        self.angle = RobotAngle::Arm2Deposit;
        Ok(())
    }

    /// Rotates back so arm 1 faces the table.
    pub fn rotate_to_table(&mut self) -> DeviceResult {
        self.step()?;
        self.angle = RobotAngle::Arm1Table;
        Ok(())
    }

    /// Forward recovery of arm/sensor faults.
    pub fn repair(&mut self, fault: DeviceFault) {
        if fault == DeviceFault::SensorStuck {
            self.sensor_stuck = false;
        }
    }

    /// Operator-level reset (outermost recovery): demagnetises both arms,
    /// bypassing the fault script. Returns whatever the arms held.
    pub fn force_clear_arms(&mut self) -> (Option<Plate>, Option<Plate>) {
        (self.arm1.holding.take(), self.arm2.holding.take())
    }

    fn step(&mut self) -> DeviceResult {
        self.ops += 1;
        match self.script.check(self.ops) {
            Some(DeviceFault::LostPlate) => {
                if self.arm1.holding.take().is_none() {
                    self.arm2.holding = None;
                }
                Err(DeviceFault::LostPlate)
            }
            Some(DeviceFault::SensorStuck) => {
                self.sensor_stuck = true;
                Err(DeviceFault::SensorStuck)
            }
            Some(f) => Err(f),
            None => Ok(()),
        }
    }
}

/// The deposit belt: carries forged plates to the environment (step 6–7).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DepositBelt {
    items: Vec<Plate>,
    /// The "traffic light for deposit": green permits forwarding plates to
    /// the environment's container.
    pub light_green: bool,
    delivered: Vec<Plate>,
    ops: u64,
    script: ScriptHandle,
}

impl DepositBelt {
    /// An empty belt with a green deposit light.
    #[must_use]
    pub fn new(script: impl Into<ScriptHandle>) -> Self {
        DepositBelt {
            items: Vec::new(),
            light_green: true,
            delivered: Vec::new(),
            ops: 0,
            script: script.into(),
        }
    }

    /// Arm 2 places a forged plate on the belt.
    pub fn accept(&mut self, plate: Plate) -> DeviceResult {
        self.ops += 1;
        if let Some(f) = self.script.check(self.ops) {
            if f == DeviceFault::LostPlate {
                return Err(DeviceFault::LostPlate);
            }
            return Err(f);
        }
        if !plate.forged {
            return Err(DeviceFault::ControlSoftwareFault);
        }
        self.items.push(plate);
        Ok(())
    }

    /// Forwards plates to the environment's container while the light is
    /// green; returns how many were delivered.
    pub fn forward(&mut self) -> DeviceResult<usize> {
        self.ops += 1;
        if let Some(f) = self.script.check(self.ops) {
            return Err(f);
        }
        if !self.light_green {
            return Ok(0);
        }
        let n = self.items.len();
        self.delivered.append(&mut self.items);
        Ok(n)
    }

    /// Plates delivered to the environment so far.
    #[must_use]
    pub fn delivered(&self) -> &[Plate] {
        &self.delivered
    }

    /// Operator-level reset (outermost recovery): forwards every waiting
    /// plate to the environment, bypassing the fault script and the
    /// traffic light — a physical intervention cannot be blocked by a
    /// belt fault. Returns how many plates were delivered.
    pub fn force_forward(&mut self) -> usize {
        let n = self.items.len();
        self.delivered.append(&mut self.items);
        n
    }

    /// Plates accepted but not yet forwarded to the environment.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.items.len()
    }

    /// The plates waiting on the belt (accepted, not yet forwarded).
    #[must_use]
    pub fn pending(&self) -> &[Plate] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultScript;

    #[test]
    fn happy_path_production_cycle_moves_one_plate_end_to_end() {
        let mut feed = FeedBelt::new(FaultScript::new());
        let mut table = RotaryTable::new(FaultScript::new());
        let mut robot = Robot::new(FaultScript::new());
        let mut press = Press::new(FaultScript::new());
        let mut deposit = DepositBelt::new(FaultScript::new());

        feed.insert_blank(Plate::blank(1)).unwrap();
        let plate = feed.convey_to_table().unwrap().unwrap();
        table.load(plate).unwrap();
        table.rotate_to_robot().unwrap();
        table.lift().unwrap();
        robot.extend_arm1().unwrap();
        let plate = table.take_plate().unwrap();
        robot.arm1_grab(plate).unwrap();
        robot.retract_arm1().unwrap();
        let plate = robot.arm1_release().unwrap();
        press.insert(plate).unwrap();
        press.forge().unwrap();
        robot.rotate_to_deposit().unwrap();
        robot.extend_arm2().unwrap();
        let plate = press.remove().unwrap();
        robot.arm2_grab(plate).unwrap();
        robot.retract_arm2().unwrap();
        let plate = robot.arm2_release().unwrap();
        deposit.accept(plate).unwrap();
        assert_eq!(deposit.forward().unwrap(), 1);
        assert_eq!(deposit.delivered().len(), 1);
        assert!(deposit.delivered()[0].forged);
        // Table returns for the next cycle.
        table.lower().unwrap();
        table.rotate_to_belt().unwrap();
        assert_eq!(table.angle, TableAngle::Belt);
    }

    #[test]
    fn scripted_motor_fault_fires_and_latches() {
        // The table's third operation is the lift: schedule vm_stop there.
        let script = FaultScript::new().with(3, DeviceFault::VerticalMotorStop);
        let mut table = RotaryTable::new(script);
        table.load(Plate::blank(1)).unwrap();
        table.rotate_to_robot().unwrap();
        assert_eq!(table.lift(), Err(DeviceFault::VerticalMotorStop));
        assert!(table.vertical_motor_broken);
        // Until repaired, vertical moves keep failing.
        assert_eq!(table.lift(), Err(DeviceFault::VerticalMotorNoMove));
        table.repair(DeviceFault::VerticalMotorStop);
        table.lift().unwrap();
        assert!(table.lifted);
    }

    #[test]
    fn lost_plate_fault_removes_the_plate() {
        let script = FaultScript::new().with(2, DeviceFault::LostPlate);
        let mut table = RotaryTable::new(script);
        table.load(Plate::blank(9)).unwrap();
        assert_eq!(table.rotate_to_robot(), Err(DeviceFault::LostPlate));
        assert_eq!(table.plate(), None, "the plate fell off");
        // Taking a plate that is gone is itself a lost-plate condition.
        assert_eq!(table.take_plate(), Err(DeviceFault::LostPlate));
    }

    #[test]
    fn stuck_sensor_reports_nothing() {
        let script = FaultScript::new().with(1, DeviceFault::SensorStuck);
        let mut table = RotaryTable::new(script);
        assert_eq!(table.load(Plate::blank(1)), Err(DeviceFault::SensorStuck));
        assert_eq!(table.sensed_angle(), None);
        table.repair(DeviceFault::SensorStuck);
        assert_eq!(table.sensed_angle(), Some(TableAngle::Belt));
    }

    #[test]
    fn press_refuses_double_insert_and_empty_forge() {
        let mut press = Press::new(FaultScript::new());
        assert_eq!(press.forge(), Err(DeviceFault::ControlSoftwareFault));
        press.insert(Plate::blank(1)).unwrap();
        assert_eq!(
            press.insert(Plate::blank(2)),
            Err(DeviceFault::ControlSoftwareFault)
        );
        press.forge().unwrap();
        assert!(press.plate().unwrap().forged);
        assert_eq!(press.forgings, 1);
    }

    #[test]
    fn feed_belt_respects_traffic_light() {
        let mut feed = FeedBelt::new(FaultScript::new());
        feed.light_green = false;
        assert_eq!(
            feed.insert_blank(Plate::blank(1)),
            Err(DeviceFault::ControlSoftwareFault)
        );
        feed.light_green = true;
        feed.insert_blank(Plate::blank(1)).unwrap();
        assert_eq!(feed.len(), 1);
    }

    #[test]
    fn deposit_belt_rejects_unforged_plates() {
        let mut deposit = DepositBelt::new(FaultScript::new());
        assert_eq!(
            deposit.accept(Plate::blank(1)),
            Err(DeviceFault::ControlSoftwareFault)
        );
        deposit
            .accept(Plate {
                id: 1,
                forged: true,
            })
            .unwrap();
        deposit.light_green = false;
        assert_eq!(deposit.forward().unwrap(), 0);
        deposit.light_green = true;
        assert_eq!(deposit.forward().unwrap(), 1);
    }

    #[test]
    fn robot_arm_bookkeeping() {
        let mut robot = Robot::new(FaultScript::new());
        robot.arm1_grab(Plate::blank(4)).unwrap();
        assert_eq!(
            robot.arm1_grab(Plate::blank(5)),
            Err(DeviceFault::ControlSoftwareFault),
            "magnet already holds a plate"
        );
        let p = robot.arm1_release().unwrap();
        assert_eq!(p.id, 4);
        assert_eq!(robot.arm1_release(), Err(DeviceFault::LostPlate));
    }

    #[test]
    fn empty_feed_belt_conveys_nothing() {
        let mut feed = FeedBelt::new(FaultScript::new());
        assert_eq!(feed.convey_to_table().unwrap(), None);
        assert!(feed.is_empty());
    }
}
