//! `coverage_merge` — union sharded runs' `coverage.json` documents.
//!
//! A fuzz run or sweep split across CI jobs with `--shard k/n` produces
//! one `coverage.json` per shard. This tool merges them into the document
//! the unsharded run would have produced: executions add, path counters
//! sum, signature maps union per key — so the merged document of an
//! evenly sharded sweep equals the unsharded sweep's document byte for
//! byte. On top of the merged document it can emit the human **triage
//! report**: saturated paths (highest-hit counters), starved paths (never
//! hit), the fuzz-vs-fresh signature gain, and every violation with its
//! replay handle — the artifact the nightly CI job uploads.
//!
//! ```text
//! cargo run -p caa-bench --release --bin coverage_merge -- \
//!     shard0/coverage.json shard1/coverage.json ... \
//!     [--out merged.json] [--triage triage.md]
//! ```

use caa_harness::fuzz::CoverageDoc;

fn main() {
    let usage = "usage: coverage_merge <coverage.json>... [--out PATH] [--triage PATH]";
    let mut inputs: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut triage_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = Some(value("--out")),
            "--triage" => triage_path = Some(value("--triage")),
            other if other.starts_with("--") => {
                eprintln!("unknown argument {other}; {usage}");
                std::process::exit(2);
            }
            path => inputs.push(path.to_owned()),
        }
    }
    if inputs.is_empty() {
        eprintln!("{usage}");
        std::process::exit(2);
    }

    let mut merged: Option<CoverageDoc> = None;
    for path in &inputs {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let doc = CoverageDoc::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        });
        match &mut merged {
            None => merged = Some(doc),
            Some(into) => into.merge(&doc),
        }
    }
    let merged = merged.expect("at least one input");

    let doc = merged.render();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &doc).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("merged {} document(s) into {path}", inputs.len());
        }
        None => print!("{doc}"),
    }
    if let Some(path) = triage_path {
        std::fs::write(&path, merged.triage()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("triage report written to {path}");
    }
    eprintln!(
        "{} execution(s), {} distinct signature(s), {} violation(s)",
        merged.executions,
        merged.signatures.len(),
        merged.violations.len()
    );
}
