//! `coverage_merge` — union sharded runs' `coverage.json` documents.
//!
//! A fuzz run or sweep split across CI jobs with `--shard k/n` produces
//! one `coverage.json` per shard. This tool merges them into the document
//! the unsharded run would have produced: executions add, path counters
//! sum, signature maps union per key — so the merged document of an
//! evenly sharded sweep equals the unsharded sweep's document byte for
//! byte. On top of the merged document it can emit the human **triage
//! report**: saturated paths (highest-hit counters), starved paths (never
//! hit), the fuzz-vs-fresh signature gain, and every violation with its
//! replay handle — the artifact the nightly CI job uploads.
//!
//! ```text
//! cargo run -p caa-bench --release --bin coverage_merge -- \
//!     shard0/coverage.json shard1/coverage.json ... \
//!     [--out merged.json] [--triage triage.md]
//! ```

use caa_harness::fuzz::CoverageDoc;
use caa_telemetry::json::MergeCli;

fn main() {
    let usage = "usage: coverage_merge <coverage.json>... [--out PATH] [--triage PATH]";
    let cli = MergeCli::parse(std::env::args().skip(1), &["--triage"]).unwrap_or_else(|e| {
        eprintln!("{e}\n{usage}");
        std::process::exit(2);
    });
    let merged = cli
        .fold(CoverageDoc::parse, |into, doc| into.merge(&doc))
        .unwrap_or_else(|e| {
            eprintln!("{e}\n{usage}");
            std::process::exit(2);
        });
    cli.emit(&merged.render()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(path) = cli.extra_value("--triage") {
        std::fs::write(path, merged.triage()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("triage report written to {path}");
    }
    eprintln!(
        "{} execution(s), {} distinct signature(s), {} violation(s)",
        merged.executions,
        merged.signatures.len(),
        merged.violations.len()
    );
}
