//! `sweep_bench` — the sweep-throughput benchmark behind `BENCH_sweep.json`.
//!
//! Measures how fast the harness explores deterministic simulation seeds,
//! under the honest accounting the sweep summary uses: **seeds/s** (what a
//! CI budget buys) and **executions/s** (the real work rate — with
//! `check_replay` every seed executes twice). Three configurations:
//!
//! * `default` — the acceptance-sweep scenario space, no replay check;
//! * `default+replay` — the same space with byte-exact replay checking;
//! * `object-heavy` — [`ScenarioConfig::object_heavy`]: every plan carries
//!   a contended shared-object pool with ≥ 4 participants, the workload
//!   the wake-on-release arbitration refactor targets.
//!
//! ```text
//! cargo run -p caa-bench --release --bin sweep_bench -- \
//!     [--seeds N] [--workers N] [--shard k/n] [--out BENCH_sweep.json] \
//!     [--min-seeds-per-sec N]
//! ```
//!
//! `--shard k/n` restricts the run to one deterministic shard of the seed
//! range (see `caa_harness::sweep::Shard`), so CI matrices or multiple
//! machines can split one big sweep without coordination.
//!
//! `--min-seeds-per-sec N` turns the run into a perf smoke gate: the
//! process exits nonzero if any case explores fewer than `N` seeds/s.
//! CI passes a deliberately generous floor — an order of magnitude below
//! the trajectory in `BENCH_sweep.json` — so hardware jitter never trips
//! it but a structural collapse (an accidental O(n²), a lost wake-up
//! path, a per-seed allocation storm) cannot slip through unnoticed.
//!
//! `--max-handoffs-per-seed N` gates the scheduler's park counter the
//! same way: with `--workers 1` a virtual-time seed costs a fixed number
//! of futex handoffs (~57/seed at PR 5), and a lost targeted-wakeup
//! optimisation shows up as that number exploding long before wall-clock
//! noise would reveal it. The count is wall-clock nondeterministic, so
//! the gate is a ceiling, not an equality.
//!
//! Alongside the bench JSON, the run writes the merged `metrics.json`
//! (all cases' [`SweepMetrics`] unioned) next to `--out` — protocol
//! latency distributions in virtual time, mergeable across shards with
//! the `metrics_merge` bin.
//!
//! The JSON is a flat, diff-friendly document uploaded as a CI artifact
//! (the per-commit measurement). The `BENCH_sweep.json` committed at the
//! workspace root is the longer-lived perf trajectory: it aggregates
//! labeled runs of this bench (`{"runs": [{label, cases}, …]}`) so
//! before/after numbers for scheduler changes stay recorded.

use std::fmt::Write as _;
use std::time::Instant;

use caa_harness::metrics::{metrics_json, SweepMetrics};
use caa_harness::plan::ScenarioConfig;
use caa_harness::sweep::{sweep, Shard, SweepConfig, SweepReport};

struct BenchCase {
    name: &'static str,
    scenario: ScenarioConfig,
    check_replay: bool,
}

struct BenchResult {
    name: &'static str,
    report: SweepReport,
}

fn run_case(case: &BenchCase, seeds: u64, workers: usize, shard: Option<Shard>) -> BenchResult {
    let report = sweep(&SweepConfig {
        start_seed: 0,
        seeds,
        workers,
        scenario: case.scenario.clone(),
        check_replay: case.check_replay,
        corpus_dir: None,
        shard,
    });
    assert!(
        report.all_passed(),
        "bench sweep '{}' found violating seeds:\n{}",
        case.name,
        report.summary()
    );
    BenchResult {
        name: case.name,
        report,
    }
}

fn json(results: &[BenchResult], seeds: u64, workers: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"sweep\",");
    let _ = writeln!(out, "  \"seeds_per_case\": {seeds},");
    let _ = writeln!(
        out,
        "  \"workers\": {},",
        if workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            workers
        }
    );
    let _ = writeln!(out, "  \"cases\": [");
    for (i, r) in results.iter().enumerate() {
        let report = &r.report;
        let wall = report.wall.as_secs_f64();
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"config\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"seeds\": {},", report.seeds_run);
        let _ = writeln!(out, "      \"executions\": {},", report.executions_run);
        let _ = writeln!(out, "      \"wall_s\": {wall:.4},");
        let _ = writeln!(out, "      \"seeds_per_s\": {:.1},", report.seeds_per_sec());
        let _ = writeln!(
            out,
            "      \"executions_per_s\": {:.1},",
            report.executions_per_sec()
        );
        let _ = writeln!(out, "      \"trace_entries\": {},", report.trace_entries);
        let _ = writeln!(
            out,
            "      \"trace_entries_per_s\": {:.0},",
            report.trace_entries as f64 / wall.max(1e-9)
        );
        let _ = writeln!(out, "      \"virtual_secs\": {:.0}", report.virtual_secs);
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut seeds: u64 = 2000;
    let mut workers: usize = 0;
    let mut shard: Option<Shard> = None;
    let mut out_path = String::from("BENCH_sweep.json");
    let mut min_seeds_per_sec: Option<f64> = None;
    let mut max_handoffs_per_seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds").parse().expect("--seeds N"),
            "--workers" => workers = value("--workers").parse().expect("--workers N"),
            "--shard" => {
                shard = Some(Shard::parse(&value("--shard")).unwrap_or_else(|e| {
                    eprintln!("bad --shard value: {e}");
                    std::process::exit(2);
                }));
            }
            "--out" => out_path = value("--out"),
            "--min-seeds-per-sec" => {
                min_seeds_per_sec = Some(
                    value("--min-seeds-per-sec")
                        .parse()
                        .expect("--min-seeds-per-sec N"),
                );
            }
            "--max-handoffs-per-seed" => {
                max_handoffs_per_seed = Some(
                    value("--max-handoffs-per-seed")
                        .parse()
                        .expect("--max-handoffs-per-seed N"),
                );
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: sweep_bench [--seeds N] [--workers N] \
                     [--shard k/n] [--out PATH] [--min-seeds-per-sec N] \
                     [--max-handoffs-per-seed N]"
                );
                std::process::exit(2);
            }
        }
    }

    let cases = [
        BenchCase {
            name: "default",
            scenario: ScenarioConfig::default(),
            check_replay: false,
        },
        BenchCase {
            name: "default+replay",
            scenario: ScenarioConfig::default(),
            check_replay: true,
        },
        BenchCase {
            name: "object-heavy",
            scenario: ScenarioConfig::object_heavy(),
            check_replay: false,
        },
    ];

    let started = Instant::now();
    let mut results = Vec::new();
    for case in &cases {
        let result = run_case(case, seeds, workers, shard);
        eprintln!("{}: {}", result.name, result.report.summary());
        results.push(result);
    }
    let doc = json(&results, seeds, workers);
    std::fs::write(&out_path, &doc).expect("write bench JSON");
    print!("{doc}");
    eprintln!("wrote {out_path} in {:.2?}", started.elapsed());

    // Union of every case's metrics, written next to the bench JSON.
    let mut merged = SweepMetrics::default();
    let mut seeds_total = 0;
    for result in &results {
        merged.merge(&result.report.metrics);
        seeds_total += result.report.seeds_run;
    }
    let metrics_path = match out_path.rfind('/') {
        Some(slash) => format!("{}/metrics.json", &out_path[..slash]),
        None => String::from("metrics.json"),
    };
    std::fs::write(&metrics_path, metrics_json(&merged, seeds_total, true))
        .expect("write metrics JSON");
    eprintln!("wrote {metrics_path}");

    if let Some(ceiling) = max_handoffs_per_seed {
        let mut exceeded = false;
        for result in &results {
            let per_seed = result.report.metrics.parks_per_seed();
            if per_seed > ceiling {
                eprintln!(
                    "HANDOFF CEILING VIOLATED: case '{}' parked ~{per_seed} times per seed, \
                     above the --max-handoffs-per-seed ceiling of {ceiling}",
                    result.name
                );
                exceeded = true;
            }
        }
        if exceeded {
            std::process::exit(4);
        }
        eprintln!("handoff ceiling ok: every case ≤ {ceiling} parks/seed");
    }

    if let Some(floor) = min_seeds_per_sec {
        let mut collapsed = false;
        for result in &results {
            let rate = result.report.seeds_per_sec();
            if rate < floor {
                eprintln!(
                    "PERF FLOOR VIOLATED: case '{}' explored {rate:.0} seeds/s, \
                     below the --min-seeds-per-sec floor of {floor:.0}",
                    result.name
                );
                collapsed = true;
            }
        }
        if collapsed {
            std::process::exit(3);
        }
        eprintln!("perf floor ok: every case ≥ {floor:.0} seeds/s");
    }
}
