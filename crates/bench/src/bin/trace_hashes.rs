//! `trace_hashes` — per-seed trace fingerprints for pre/post refactor
//! comparison.
//!
//! Prints one line per seed: the seed, whether the generated plan contains
//! a crash-stop participant (`crashfree` / `crash`), and the FNV-1a hash of
//! the canonical rendered trace. Protocol refactors that must keep
//! crash-free behaviour byte-identical run this tool before and after the
//! change and diff the `crashfree` lines (crash seeds are allowed to move
//! when the crash model itself changes). A trailing section hashes
//! production-cell runs the same way.
//!
//! Fingerprints are computed by streaming
//! ([`Trace::render_fingerprint`](caa_harness::trace::Trace::render_fingerprint)):
//! each entry renders into one reusable line buffer and folds into the
//! running hash, so a hash-gate sweep never materialises a full rendered
//! trace — by construction the value equals `fnv1a64(render())`, keeping
//! old and new hash files comparable.
//!
//! ```text
//! cargo run --release -p caa-bench --bin trace_hashes -- \
//!     [--seeds N] [--prodcell N] [--workers N] [--shard k/n] > hashes.txt
//! ```
//!
//! `--shard k/n` restricts the run to one deterministic shard of the seed
//! range (same split as `sweep_bench` and the replay example — see
//! `caa_harness::sweep::Shard`), so a 12k-seed gate can be split across CI
//! jobs and the sorted union of the shard outputs equals the unsharded
//! output. The prodcell section is emitted by shard 0 only (it is not
//! seed-range work).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use caa_harness::arena::ExecutionArena;
use caa_harness::exec::execute_in;
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::sweep::Shard;

fn main() {
    let mut seeds: u64 = 12_000;
    let mut prodcell: u64 = 32;
    let mut workers: usize = 0;
    let mut shard: Option<Shard> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds").parse().expect("--seeds: u64"),
            "--prodcell" => prodcell = value("--prodcell").parse().expect("--prodcell: u64"),
            "--workers" => workers = value("--workers").parse().expect("--workers: usize"),
            "--shard" => {
                shard = Some(Shard::parse(&value("--shard")).unwrap_or_else(|e| {
                    eprintln!("bad --shard value: {e}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        workers
    };

    let config = ScenarioConfig::default();
    let next = AtomicU64::new(0);
    let lines: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::with_capacity(seeds as usize));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut arena = ExecutionArena::new();
                loop {
                    let seed = next.fetch_add(1, Ordering::Relaxed);
                    if seed >= seeds {
                        return;
                    }
                    if let Some(shard) = shard {
                        if seed % shard.count != shard.index {
                            continue;
                        }
                    }
                    let plan = ScenarioPlan::generate(seed, &config);
                    let tag = if plan.crashes.is_empty() {
                        "crashfree"
                    } else {
                        "crash"
                    };
                    let artifacts = execute_in(&plan, &mut arena);
                    let hash = artifacts.trace.render_fingerprint();
                    arena.recycle_trace(artifacts.trace);
                    lines
                        .lock()
                        .expect("collector")
                        .push((seed, format!("seed {seed} {tag} {hash:016x}")));
                }
            });
        }
    });
    let mut lines = lines.into_inner().expect("collector");
    lines.sort_by_key(|(seed, _)| *seed);
    for (_, line) in &lines {
        println!("{line}");
    }
    if shard.is_none_or(|s| s.index == 0) {
        for seed in 0..prodcell {
            let run = caa_harness::prodcell::run_seed(seed, 2, false);
            println!("prodcell {seed} {:016x}", run.trace.render_fingerprint());
        }
    }
}
