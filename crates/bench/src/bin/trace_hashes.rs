//! `trace_hashes` — per-seed trace fingerprints for pre/post refactor
//! comparison.
//!
//! Prints one line per seed: the seed, whether the generated plan contains
//! a crash-stop participant (`crashfree` / `crash`), and the FNV-1a hash of
//! the canonical rendered trace. Protocol refactors that must keep
//! crash-free behaviour byte-identical run this tool before and after the
//! change and diff the `crashfree` lines (crash seeds are allowed to move
//! when the crash model itself changes). A trailing section hashes
//! production-cell runs the same way.
//!
//! ```text
//! cargo run --release -p caa-bench --bin trace_hashes -- \
//!     [--seeds N] [--prodcell N] [--workers N] > hashes.txt
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use caa_harness::exec::execute;
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::trace::fnv1a64 as fnv1a;

fn main() {
    let mut seeds: u64 = 12_000;
    let mut prodcell: u64 = 32;
    let mut workers: usize = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds").parse().expect("--seeds: u64"),
            "--prodcell" => prodcell = value("--prodcell").parse().expect("--prodcell: u64"),
            "--workers" => workers = value("--workers").parse().expect("--workers: usize"),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        workers
    };

    let config = ScenarioConfig::default();
    let next = AtomicU64::new(0);
    let lines: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::with_capacity(seeds as usize));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= seeds {
                    return;
                }
                let plan = ScenarioPlan::generate(seed, &config);
                let tag = if plan.crash.is_some() {
                    "crash"
                } else {
                    "crashfree"
                };
                let artifacts = execute(&plan);
                let hash = fnv1a(artifacts.trace.render().as_bytes());
                lines
                    .lock()
                    .expect("collector")
                    .push((seed, format!("seed {seed} {tag} {hash:016x}")));
            });
        }
    });
    let mut lines = lines.into_inner().expect("collector");
    lines.sort_by_key(|(seed, _)| *seed);
    for (_, line) in &lines {
        println!("{line}");
    }
    for seed in 0..prodcell {
        let run = caa_harness::prodcell::run_seed(seed, 2, false);
        println!(
            "prodcell {seed} {:016x}",
            fnv1a(run.trace.render().as_bytes())
        );
    }
}
