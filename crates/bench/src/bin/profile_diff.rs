//! `profile_diff` — compare two `metrics.json` documents and gate on
//! regressions.
//!
//! The attribution counterpart of `trace_hashes`: where the hash gate
//! proves *behaviour* is unchanged, this tool quantifies how the
//! *profile* moved — histogram quantile deltas (p50/p90/p99), counter
//! ratios, and critical-path segment-share shifts — between a baseline
//! and a candidate document, and exits non-zero when a configured
//! threshold is crossed. It is the tool a scheduler or transport rework
//! uses to prove its wins, and the guard CI uses to catch
//! observability-visible regressions.
//!
//! ```text
//! cargo run -p caa-bench --release --bin profile_diff -- \
//!     baseline/metrics.json candidate/metrics.json \
//!     [--max-quantile-pct 10] [--max-counter-pct 20] [--max-cp-shift-pp 5]
//! ```
//!
//! Gating rules (deterministic and `critical_path` sections only — the
//! `wall_clock` section is host-dependent and reported informationally):
//!
//! * **Quantiles** regress when a histogram's p50/p90/p99 *increases* by
//!   more than `--max-quantile-pct` percent over the baseline (latency
//!   drops are wins, never failures).
//! * **Counters** regress when a counter's value moves by more than
//!   `--max-counter-pct` percent in *either* direction (message-count
//!   changes in either direction mean the protocol behaved differently).
//! * **Critical-path shares** regress when a segment class's share of
//!   `cp_total_ns` shifts by more than `--max-cp-shift-pp` percentage
//!   points in either direction.
//!
//! Comparing a document against itself prints zero deltas and exits 0
//! (the tier-1 smoke). Exit status: `2` usage/parse errors, `1` at least
//! one threshold crossed, `0` within thresholds.

use caa_harness::metrics::{parse_metrics_json, SweepMetrics};
use caa_telemetry::MetricSet;

/// Thresholds, all overridable from the command line.
struct Gates {
    max_quantile_pct: f64,
    max_counter_pct: f64,
    max_cp_shift_pp: f64,
}

fn load(path: &str) -> (u64, SweepMetrics) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_metrics_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

/// Percent change from `base` to `cand` (`+` = increase). `None` when the
/// baseline is 0 and the candidate isn't (an appearance, flagged
/// separately).
fn pct_change(base: u64, cand: u64) -> Option<f64> {
    if base == 0 {
        (cand == 0).then_some(0.0)
    } else {
        Some((cand as f64 - base as f64) / base as f64 * 100.0)
    }
}

/// Compares the quantiles of every histogram present in either set.
/// Returns the number of regressions.
fn diff_histograms(label: &str, base: &MetricSet, cand: &MetricSet, gates: &Gates) -> u64 {
    let mut regressions = 0;
    let mut names: Vec<&str> = base.histograms_sorted().iter().map(|&(n, _)| n).collect();
    for (name, _) in cand.histograms_sorted() {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names.sort_unstable();
    for name in names {
        let (Some(b), Some(c)) = (base.histogram_named(name), cand.histogram_named(name)) else {
            println!("{label} histogram {name}: present in only one document (REGRESSION)");
            regressions += 1;
            continue;
        };
        for (q, num) in [("p50", 50u64), ("p90", 90), ("p99", 99)] {
            let (bv, cv) = (b.quantile(num, 100), c.quantile(num, 100));
            // An appearance (0 -> nonzero) is an unbounded increase; it
            // clears only an infinite (informational) threshold.
            let pct = pct_change(bv, cv).unwrap_or(f64::INFINITY);
            if pct != 0.0 {
                let verdict = if pct > gates.max_quantile_pct {
                    regressions += 1;
                    " (REGRESSION)"
                } else {
                    ""
                };
                println!("{label} {name} {q}: {bv} -> {cv} ({pct:+.1}%){verdict}");
            }
        }
    }
    regressions
}

/// Compares every counter present in either set. Returns the number of
/// regressions.
fn diff_counters(label: &str, base: &MetricSet, cand: &MetricSet, gates: &Gates) -> u64 {
    let mut regressions = 0;
    let mut names: Vec<&str> = base.counters_sorted().iter().map(|&(n, _)| n).collect();
    for (name, _) in cand.counters_sorted() {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names.sort_unstable();
    for name in names {
        let (bv, cv) = (base.counter_value(name), cand.counter_value(name));
        let pct = pct_change(bv, cv).unwrap_or(f64::INFINITY);
        if pct != 0.0 {
            let verdict = if pct.abs() > gates.max_counter_pct {
                regressions += 1;
                " (REGRESSION)"
            } else {
                ""
            };
            println!("{label} {name}: {bv} -> {cv} ({pct:+.1}%){verdict}");
        }
    }
    regressions
}

/// Compares critical-path segment *shares* (each class's percentage of
/// `cp_total_ns`) — the decomposition shape, independent of how many
/// seeds each document covers. Returns the number of regressions.
fn diff_cp_shares(base: &MetricSet, cand: &MetricSet, gates: &Gates) -> u64 {
    let (bt, ct) = (
        base.counter_value("cp_total_ns"),
        cand.counter_value("cp_total_ns"),
    );
    if bt == 0 || ct == 0 {
        if bt != ct {
            println!(
                "critical-path total: {bt} -> {ct} (attribution appeared/vanished) (REGRESSION)"
            );
            return 1;
        }
        return 0;
    }
    let mut regressions = 0;
    for class in caa_harness::spans::SegmentClass::ALL {
        let name = class.counter_name();
        let b_share = base.counter_value(name) as f64 / bt as f64 * 100.0;
        let c_share = cand.counter_value(name) as f64 / ct as f64 * 100.0;
        let shift = c_share - b_share;
        if shift != 0.0 {
            let verdict = if shift.abs() > gates.max_cp_shift_pp {
                regressions += 1;
                " (REGRESSION)"
            } else {
                ""
            };
            println!(
                "critical-path share {}: {b_share:.1}% -> {c_share:.1}% ({shift:+.1}pp){verdict}",
                class.label(),
            );
        }
    }
    regressions
}

fn main() {
    let usage = "usage: profile_diff <baseline.json> <candidate.json> \
                 [--max-quantile-pct X] [--max-counter-pct X] [--max-cp-shift-pp X]";
    let mut paths: Vec<String> = Vec::new();
    let mut gates = Gates {
        max_quantile_pct: 10.0,
        max_counter_pct: 20.0,
        max_cp_shift_pp: 5.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> f64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} needs a numeric value\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--max-quantile-pct" => gates.max_quantile_pct = value("--max-quantile-pct"),
            "--max-counter-pct" => gates.max_counter_pct = value("--max-counter-pct"),
            "--max-cp-shift-pp" => gates.max_cp_shift_pp = value("--max-cp-shift-pp"),
            other if other.starts_with("--") => {
                eprintln!("unknown argument {other}\n{usage}");
                std::process::exit(2);
            }
            path => paths.push(path.to_owned()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let (base_seeds, base) = load(baseline_path);
    let (cand_seeds, cand) = load(candidate_path);
    println!(
        "baseline {baseline_path} ({base_seeds} seeds) vs candidate {candidate_path} \
         ({cand_seeds} seeds)"
    );

    let mut regressions = 0;
    regressions += diff_histograms(
        "deterministic",
        &base.deterministic,
        &cand.deterministic,
        &gates,
    );
    regressions += diff_counters(
        "deterministic",
        &base.deterministic,
        &cand.deterministic,
        &gates,
    );
    regressions += diff_histograms(
        "critical-path",
        &base.critical_path,
        &cand.critical_path,
        &gates,
    );
    regressions += diff_counters(
        "critical-path",
        &base.critical_path,
        &cand.critical_path,
        &gates,
    );
    regressions += diff_cp_shares(&base.critical_path, &cand.critical_path, &gates);

    // Wall-clock counters are host facts: print the deltas, never gate.
    if !base.wall_clock.is_empty() || !cand.wall_clock.is_empty() {
        let permissive = Gates {
            max_quantile_pct: f64::INFINITY,
            max_counter_pct: f64::INFINITY,
            max_cp_shift_pp: f64::INFINITY,
        };
        let _ = diff_counters(
            "wall-clock (informational)",
            &base.wall_clock,
            &cand.wall_clock,
            &permissive,
        );
    }

    if regressions > 0 {
        println!("{regressions} regression(s) beyond thresholds");
        std::process::exit(1);
    }
    println!(
        "no regressions (thresholds: quantiles +{}%, counters ±{}%, cp shares ±{}pp)",
        gates.max_quantile_pct, gates.max_counter_pct, gates.max_cp_shift_pp
    );
}
