//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run -p caa-bench --release --bin paper_tables -- all
//! cargo run -p caa-bench --release --bin paper_tables -- fig9 fig12 msgs
//! ```
//!
//! Subcommands: `fig9`, `fig10`, `fig12`, `fig13`, `msgs`, `signalling`,
//! `lemma1`, `all`.

use std::sync::Arc;

use caa_baselines::{CrResolution, Rom96Resolution};
use caa_bench::{
    lemma1_bound, nested_abort, resolution_messages, simultaneous_raise, NestedAbortParams,
    SimultaneousRaiseParams,
};
use caa_core::exception::Exception;
use caa_core::outcome::HandlerVerdict;
use caa_core::time::secs;
use caa_runtime::protocol::ResolutionProtocol;
use caa_runtime::{ActionDef, System, SystemReport, XrrResolution};
use caa_simnet::LatencyModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig9",
            "fig10",
            "fig12",
            "fig13",
            "msgs",
            "signalling",
            "lemma1",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for section in wanted {
        match section {
            "fig9" => fig9(),
            "fig10" => fig10(),
            "fig12" => fig12(),
            "fig13" => fig13(),
            "msgs" => msgs(),
            "signalling" => signalling(),
            "lemma1" => lemma1(),
            other => eprintln!("unknown section: {other}"),
        }
    }
}

// ---------------------------------------------------------------- Fig 9

/// Paper values for the base column of each Figure 9 sub-table.
const FIG9_PAPER_TMMAX: &[(f64, f64)] = &[
    (0.2, 94.361391),
    (0.4, 98.586050),
    (0.6, 102.150904),
    (0.8, 106.774196),
    (1.0, 110.984972),
    (1.2, 125.078084),
    (1.4, 140.826807),
    (1.6, 161.766956),
    (1.8, 188.284787),
    (2.0, 214.519403),
    (2.2, 226.543372),
    (2.4, 237.934833),
    (2.6, 249.744183),
    (2.8, 261.768559),
];
const FIG9_PAPER_TABO: &[(f64, f64)] = &[
    (0.1, 94.361391),
    (0.3, 98.991825),
    (0.5, 101.939318),
    (0.7, 106.150075),
    (0.9, 110.154827),
    (1.1, 113.937682),
    (1.3, 118.147893),
    (1.5, 122.573297),
    (1.7, 128.461646),
    (1.9, 130.362452),
    (2.1, 134.165025),
];
const FIG9_PAPER_TRESO: &[(f64, f64)] = &[
    (0.3, 94.361391),
    (0.5, 98.352511),
    (0.7, 102.547776),
    (0.9, 107.164660),
    (1.1, 110.338507),
    (1.3, 114.729476),
    (1.5, 118.928022),
    (1.7, 122.483917),
    (1.9, 127.117187),
    (2.1, 131.816326),
    (2.3, 135.123453),
];

fn fig9_row(params: NestedAbortParams) -> f64 {
    let report = nested_abort(params);
    report.expect_ok();
    report.elapsed_secs()
}

fn fig9() {
    println!("== Figure 9: total execution time of the §5.2 application (20 iterations) ==");
    println!("   scenario: 3 threads, nested action aborted by a containing-action");
    println!("   exception; abortion handler raises a second exception; both resolved.");
    println!();
    println!("-- varying Tmmax (Tabo=0.1, Treso=0.3) --");
    println!("{:>8} {:>14} {:>14}", "Tmmax", "measured (s)", "paper (s)");
    for &(t, paper) in FIG9_PAPER_TMMAX {
        let measured = fig9_row(NestedAbortParams {
            t_mmax: t,
            ..NestedAbortParams::default()
        });
        println!("{t:>8.1} {measured:>14.2} {paper:>14.2}");
    }
    println!();
    println!("-- varying Tabo (Tmmax=0.2, Treso=0.3) --");
    println!("{:>8} {:>14} {:>14}", "Tabo", "measured (s)", "paper (s)");
    for &(t, paper) in FIG9_PAPER_TABO {
        let measured = fig9_row(NestedAbortParams {
            t_abo: t,
            ..NestedAbortParams::default()
        });
        println!("{t:>8.1} {measured:>14.2} {paper:>14.2}");
    }
    println!();
    println!("-- varying Treso (Tmmax=0.2, Tabo=0.1) --");
    println!("{:>8} {:>14} {:>14}", "Treso", "measured (s)", "paper (s)");
    for &(t, paper) in FIG9_PAPER_TRESO {
        let measured = fig9_row(NestedAbortParams {
            t_reso: t,
            ..NestedAbortParams::default()
        });
        println!("{t:>8.1} {measured:>14.2} {paper:>14.2}");
    }
    println!();
}

fn fig10() {
    println!("== Figure 10: sensitivity of total execution time ==");
    println!("   (same data as Figure 9, printed as three series; the Tmmax series");
    println!("   shows the knee past the 1.0 s acknowledgment timeout)");
    println!();
    for (label, sweep) in [
        ("Tmmax", FIG9_PAPER_TMMAX),
        ("Tabo", FIG9_PAPER_TABO),
        ("Treso", FIG9_PAPER_TRESO),
    ] {
        print!("varying {label:>6}:");
        for &(t, _) in sweep {
            let params = match label {
                "Tmmax" => NestedAbortParams {
                    t_mmax: t,
                    ..NestedAbortParams::default()
                },
                "Tabo" => NestedAbortParams {
                    t_abo: t,
                    ..NestedAbortParams::default()
                },
                _ => NestedAbortParams {
                    t_reso: t,
                    ..NestedAbortParams::default()
                },
            };
            print!(" ({t:.1},{:.1})", fig9_row(params));
        }
        println!();
    }
    println!();
}

// --------------------------------------------------------------- Fig 12

const FIG12_PAPER_TMMAX: &[(f64, f64, f64)] = &[
    (1.0, 9.153302, 11.770973),
    (1.2, 9.938735, 12.978797),
    (1.4, 10.758318, 14.168119),
    (1.6, 11.548076, 15.397075),
    (1.8, 12.356180, 16.558536),
    (2.0, 13.164378, 17.757369),
    (2.2, 13.931107, 18.967081),
    (2.4, 14.720373, 20.188518),
];
const FIG12_PAPER_TRES: &[(f64, f64, f64)] = &[
    (0.3, 9.153302, 11.770973),
    (0.5, 9.348575, 12.358930),
    (0.7, 9.581770, 12.984660),
    (0.9, 9.762674, 13.604786),
    (1.1, 9.981335, 14.212014),
    (1.3, 10.177758, 14.817670),
    (1.5, 10.414642, 15.288979),
];

/// Averages the §5.3 scenario over several seeds (the paper's single
/// numbers are smooth; individual runs with uniform latencies are noisy).
fn fig12_point(t_mmax: f64, t_res: f64, protocol: &Arc<dyn ResolutionProtocol>) -> f64 {
    let seeds = [3u64, 11, 17, 29, 41];
    let total: f64 = seeds
        .iter()
        .map(|&seed| {
            let report = simultaneous_raise(
                SimultaneousRaiseParams {
                    t_mmax,
                    t_res,
                    n: 3,
                    seed,
                },
                Arc::clone(protocol),
            );
            report.expect_ok();
            report.elapsed_secs()
        })
        .sum();
    total / seeds.len() as f64
}

fn fig12() {
    println!("== Figure 12: ours vs Campbell-Randell, 3 threads raising simultaneously ==");
    let ours: Arc<dyn ResolutionProtocol> = Arc::new(XrrResolution);
    let cr: Arc<dyn ResolutionProtocol> = Arc::new(CrResolution);
    println!();
    println!("-- varying Tmmax (Tres=0.3) --");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "Tmmax", "ours (s)", "CR (s)", "paper ours", "paper CR"
    );
    for &(t, p_ours, p_cr) in FIG12_PAPER_TMMAX {
        let m_ours = fig12_point(t, 0.3, &ours);
        let m_cr = fig12_point(t, 0.3, &cr);
        println!("{t:>6.1} {m_ours:>12.2} {m_cr:>12.2} {p_ours:>12.2} {p_cr:>12.2}");
    }
    println!();
    println!("-- varying Tres (Tmmax=1.0) --");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "Tres", "ours (s)", "CR (s)", "paper ours", "paper CR"
    );
    for &(t, p_ours, p_cr) in FIG12_PAPER_TRES {
        let m_ours = fig12_point(1.0, t, &ours);
        let m_cr = fig12_point(1.0, t, &cr);
        println!("{t:>6.1} {m_ours:>12.2} {m_cr:>12.2} {p_ours:>12.2} {p_cr:>12.2}");
    }
    println!();
}

fn fig13() {
    println!("== Figure 13: comparison summary (slopes of the Figure 12 series) ==");
    let ours: Arc<dyn ResolutionProtocol> = Arc::new(XrrResolution);
    let cr: Arc<dyn ResolutionProtocol> = Arc::new(CrResolution);
    let slope = |a: f64, b: f64, da: f64| (b - a) / da;

    let o1 = fig12_point(1.0, 0.3, &ours);
    let o2 = fig12_point(2.4, 0.3, &ours);
    let c1 = fig12_point(1.0, 0.3, &cr);
    let c2 = fig12_point(2.4, 0.3, &cr);
    println!(
        "(a) d(total)/d(Tmmax): ours {:.2} vs CR {:.2}   (paper: 3.98 vs 6.01)",
        slope(o1, o2, 1.4),
        slope(c1, c2, 1.4)
    );

    let o3 = fig12_point(1.0, 1.5, &ours);
    let c3 = fig12_point(1.0, 1.5, &cr);
    println!(
        "(b) d(total)/d(Tres) : ours {:.2} vs CR {:.2}   (paper: 1.05 vs 2.93)",
        slope(o1, o3, 1.2),
        slope(c1, c3, 1.2)
    );
    println!("    resolution invoked  : ours once per recovery; CR N(N-1)(N-2)+N(N-1) times");
    println!();
}

// ---------------------------------------------------------------- msgs

fn run_counting(n: u32, raisers: &[u32], protocol: Arc<dyn ResolutionProtocol>) -> SystemReport {
    let prims: Vec<caa_core::ExceptionId> = (0..n)
        .map(|i| caa_core::ExceptionId::new(format!("e{i}")))
        .collect();
    let graph = caa_exgraph::generate::conjunction_lattice(&prims, prims.len()).unwrap();
    let mut builder = ActionDef::builder("measured");
    for i in 0..n {
        builder = builder.role(format!("r{i}"), i);
    }
    builder = builder.graph(graph);
    for i in 0..n {
        builder = builder.fallback_handler(format!("r{i}"), |_| Ok(HandlerVerdict::Recovered));
    }
    let action = builder.build().unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.05)))
        .protocol(protocol)
        .build();
    for i in 0..n {
        let a = action.clone();
        let raises = raisers.contains(&i);
        sys.spawn(format!("T{i}"), move |ctx| {
            ctx.enter(&a, &format!("r{i}"), |rc| {
                rc.work(secs(0.1))?;
                if raises {
                    rc.raise(Exception::new(format!("e{i}")))?;
                }
                rc.work(secs(30.0))
            })
            .map(|_| ())
        });
    }
    let report = sys.run();
    report.expect_ok();
    report
}

fn msgs() {
    println!("== §3.3.3 / Theorem 2: resolution-message counts ==");
    println!();
    println!("-- one exception, no nesting: predicted (N+1)(N-1) --");
    println!(
        "{:>3} {:>10} {:>10} {:>8} {:>9} {:>11}",
        "N", "Exception", "Suspended", "Commit", "total", "predicted"
    );
    for n in 2u64..=8 {
        let r = run_counting(n as u32, &[0], Arc::new(XrrResolution));
        println!(
            "{n:>3} {:>10} {:>10} {:>8} {:>9} {:>11}",
            r.net_stats.sent("Exception"),
            r.net_stats.sent("Suspended"),
            r.net_stats.sent("Commit"),
            resolution_messages(&r),
            (n + 1) * (n - 1)
        );
    }
    println!();
    println!("-- all N raise simultaneously: same total, no Suspended --");
    println!(
        "{:>3} {:>10} {:>10} {:>8} {:>9} {:>11}",
        "N", "Exception", "Suspended", "Commit", "total", "predicted"
    );
    for n in 2u64..=8 {
        let raisers: Vec<u32> = (0..n as u32).collect();
        let r = run_counting(n as u32, &raisers, Arc::new(XrrResolution));
        println!(
            "{n:>3} {:>10} {:>10} {:>8} {:>9} {:>11}",
            r.net_stats.sent("Exception"),
            r.net_stats.sent("Suspended"),
            r.net_stats.sent("Commit"),
            resolution_messages(&r),
            (n + 1) * (n - 1)
        );
    }
    println!();
    println!("-- algorithm comparison (all N raise): total messages / resolutions invoked --");
    println!(
        "{:>3} {:>16} {:>16} {:>16}",
        "N", "ours (xrr98)", "Rom96", "CR86"
    );
    for n in 2u64..=6 {
        let raisers: Vec<u32> = (0..n as u32).collect();
        let ours = run_counting(n as u32, &raisers, Arc::new(XrrResolution));
        let rom = run_counting(n as u32, &raisers, Arc::new(Rom96Resolution));
        let cr = run_counting(n as u32, &raisers, Arc::new(CrResolution));
        println!(
            "{n:>3} {:>12}/{:<3} {:>12}/{:<3} {:>12}/{:<3}",
            resolution_messages(&ours),
            ours.runtime_stats.resolutions_invoked,
            resolution_messages(&rom),
            rom.runtime_stats.resolutions_invoked,
            resolution_messages(&cr),
            cr.runtime_stats.resolutions_invoked,
        );
    }
    println!("    predictions: ours (N+1)(N-1); Rom96 3N(N-1), N invocations;");
    println!("    CR N^2(N-1) messages, N(N-1)(N-2)+N(N-1) invocations (O(N^3)).");
    println!();
}

fn signalling() {
    println!("== §3.4: signalling-message counts ==");
    println!();
    println!(
        "{:>3} {:>16} {:>16} {:>14} {:>14}",
        "N", "simple (meas.)", "predicted N(N-1)", "undo (meas.)", "pred. 2N(N-1)"
    );
    for n in 2u64..=8 {
        // Simple case: handler recovers (φ), one exchange.
        let simple = run_counting(n as u32, &[0], Arc::new(XrrResolution));
        // Undo case: one handler requests µ, two exchanges.
        let undo = {
            let graph = caa_exgraph::ExceptionGraphBuilder::new()
                .primitive("e")
                .build()
                .unwrap();
            let mut builder = ActionDef::builder("undoing");
            for i in 0..n as u32 {
                builder = builder.role(format!("r{i}"), i);
            }
            builder = builder.graph(graph);
            builder = builder.handler("r0", "e", |_| Ok(HandlerVerdict::Undo));
            for i in 1..n as u32 {
                builder = builder.handler(format!("r{i}"), "e", |_| Ok(HandlerVerdict::Recovered));
            }
            let action = builder.build().unwrap();
            let mut sys = System::builder()
                .latency(LatencyModel::Fixed(secs(0.05)))
                .build();
            for i in 0..n as u32 {
                let a = action.clone();
                sys.spawn(format!("T{i}"), move |ctx| {
                    ctx.enter(&a, &format!("r{i}"), |rc| {
                        rc.work(secs(0.1))?;
                        if i == 0 {
                            rc.raise(Exception::new("e"))?;
                        }
                        rc.work(secs(30.0))
                    })
                    .map(|_| ())
                });
            }
            let r = sys.run();
            r.expect_ok();
            r
        };
        println!(
            "{n:>3} {:>16} {:>16} {:>14} {:>14}",
            simple.net_stats.sent("toBeSignalled"),
            n * (n - 1),
            undo.net_stats.sent("toBeSignalled"),
            2 * n * (n - 1)
        );
    }
    println!();
}

fn lemma1() {
    println!("== Lemma 1: completion-time bound ==");
    println!("   T <= (2*nmax+3)*Tmmax + nmax*Tabort + (nmax+1)*(Treso + Dmax)");
    println!();
    println!(
        "{:>8} {:>8} {:>8} {:>14} {:>12}",
        "Tmmax", "Tabo", "Treso", "measured T(s)", "bound (s)"
    );
    for (t_mmax, t_abo, t_reso) in [
        (0.2, 0.1, 0.3),
        (0.5, 0.3, 0.5),
        (1.0, 0.5, 0.3),
        (1.0, 1.0, 1.0),
    ] {
        // One iteration of the nested-abort scenario; recovery time is the
        // elapsed time minus the computation before the raise.
        let report = nested_abort(NestedAbortParams {
            t_mmax,
            t_abo,
            t_reso,
            iterations: 1,
            seed: 5,
            ack_timeout: None,
        });
        let recovery = report.elapsed_secs() - 3.4; // minus pre-raise work
        let bound = lemma1_bound(
            1.0,
            t_mmax,
            t_abo,
            t_reso,
            caa_bench::scenarios::handler_work().as_secs_f64(),
        ) + 2.0 * t_mmax; // plus the synchronous-exit round our runtime adds
        println!(
            "{t_mmax:>8.1} {t_abo:>8.1} {t_reso:>8.1} {recovery:>14.2} {bound:>12.2}  {}",
            if recovery <= bound { "OK" } else { "VIOLATION" }
        );
    }
    println!();
}
