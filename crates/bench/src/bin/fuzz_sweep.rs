//! `fuzz_sweep` — the coverage-guided exploration driver.
//!
//! Runs the harness's fuzz loop ([`caa_harness::fuzz::fuzz`]): generation 0
//! executes fresh seeds, then every generation mutates energy-weighted
//! frontier plans toward novel protocol-path signatures. Fully
//! deterministic for a fixed flag set — worker count only changes wall
//! clock, and any find replays from its persisted lineage via
//! `replay --corpus`.
//!
//! ```text
//! # The nightly shape: a budget, a fresh-seed baseline, a shard split,
//! # and a machine-readable coverage.json per shard (merge the shards
//! # with the coverage_merge bin):
//! cargo run -p caa-bench --release --bin fuzz_sweep -- \
//!     --budget 50000 --baseline [--shard 2/8] [--out coverage.json] \
//!     [--triage triage.md]
//!
//! # The tier-1 shape: a tiny smoke loop proving the feedback loop still
//! # finds novelty beyond its initial seeds:
//! cargo run -p caa-bench --release --bin fuzz_sweep -- --fuzz-smoke
//! ```
//!
//! `--shard k/n` gives each shard a disjoint generation-0 seed range and
//! its own mutation stream (the master fuzz seed is offset by the shard
//! index), so shards explore without coordination and their
//! `coverage.json` documents union meaningfully.
//!
//! Exit status: `2` for usage errors, `1` when a violation was found or
//! a `--min-gain-pct` gate failed, `4` when `--max-handoffs-per-seed`
//! caught a scheduler handoff regression, `0` otherwise.

use std::path::PathBuf;

use caa_harness::fuzz::{fuzz, CoverageDoc, FuzzConfig};
use caa_harness::sweep::Shard;

fn main() {
    let usage = "usage: fuzz_sweep [--budget N] [--initial N] [--start SEED] [--batch N] \
                 [--fuzz-seed N] [--workers N] [--shard k/n] [--baseline] [--check-replay] \
                 [--corpus DIR] [--out PATH] [--triage PATH] [--min-gain-pct X] \
                 [--multi-crash] [--fuzz-smoke] [--max-handoffs-per-seed N]";
    let mut config = FuzzConfig {
        corpus_dir: Some(PathBuf::from("target/caa-corpus")),
        ..FuzzConfig::default()
    };
    let mut shard: Option<Shard> = None;
    let mut out_path: Option<String> = None;
    let mut triage_path: Option<String> = None;
    let mut min_gain_pct: Option<f64> = None;
    let mut max_handoffs_per_seed: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{usage}");
                std::process::exit(2);
            })
        };
        fn parsed<T: std::str::FromStr>(flag: &str, raw: &str) -> T
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().unwrap_or_else(|e| {
                eprintln!("bad {flag} value: {e}");
                std::process::exit(2);
            })
        }
        match arg.as_str() {
            "--budget" => config.executions = parsed("--budget", &value("--budget")),
            "--initial" => config.initial_seeds = parsed("--initial", &value("--initial")),
            "--start" => config.start_seed = parsed("--start", &value("--start")),
            "--batch" => config.batch = parsed("--batch", &value("--batch")),
            "--fuzz-seed" => config.fuzz_seed = parsed("--fuzz-seed", &value("--fuzz-seed")),
            "--workers" => config.workers = parsed("--workers", &value("--workers")),
            "--shard" => {
                shard = Some(Shard::parse(&value("--shard")).unwrap_or_else(|e| {
                    eprintln!("bad --shard value: {e}");
                    std::process::exit(2);
                }));
            }
            "--baseline" => config.compare_fresh = true,
            "--check-replay" => config.check_replay = true,
            "--corpus" => config.corpus_dir = Some(PathBuf::from(value("--corpus"))),
            "--out" => out_path = Some(value("--out")),
            "--triage" => triage_path = Some(value("--triage")),
            "--min-gain-pct" => {
                min_gain_pct = Some(parsed("--min-gain-pct", &value("--min-gain-pct")));
            }
            "--max-handoffs-per-seed" => {
                max_handoffs_per_seed = Some(parsed(
                    "--max-handoffs-per-seed",
                    &value("--max-handoffs-per-seed"),
                ));
            }
            "--multi-crash" => {
                // The crash-heavy scenario space: nearly every plan
                // carries a crash schedule, so multi-crash and
                // rejoin-mid-recovery paths dominate the frontier. The
                // config is persisted with every corpus entry, so finds
                // replay through the ordinary `replay --corpus` path.
                config.scenario = caa_harness::plan::ScenarioConfig::multi_crash();
            }
            "--fuzz-smoke" => {
                // The tier-1 preset: small enough for a debug-profile CI
                // lane, large enough that the frontier provably schedules
                // mutations and finds signatures fresh seeds missed.
                config.executions = 160;
                config.initial_seeds = 48;
                config.batch = 32;
                config.compare_fresh = true;
            }
            other => {
                eprintln!("unknown argument {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if let Some(shard) = shard {
        // Disjoint generation-0 ranges and distinct mutation streams per
        // shard; the budget is per shard (n shards explore n× the budget).
        config.start_seed += shard.index * config.initial_seeds;
        config.fuzz_seed = config.fuzz_seed.wrapping_add(shard.index);
    }
    if min_gain_pct.is_some() && !config.compare_fresh {
        eprintln!("--min-gain-pct needs --baseline (or --fuzz-smoke)");
        std::process::exit(2);
    }

    let report = fuzz(&config);
    eprint!("{}", report.summary());

    // Scheduler handoff ceiling over the fuzz loop's own executions —
    // the same regression guard sweep_bench applies to sweeps, with the
    // same exit code, so CI lanes treat both uniformly.
    if let Some(ceiling) = max_handoffs_per_seed {
        let per_seed = report.metrics.parks_per_seed();
        if per_seed > ceiling {
            eprintln!(
                "HANDOFF CEILING VIOLATED: fuzz loop parked ~{per_seed} times per execution, \
                 above the --max-handoffs-per-seed ceiling of {ceiling}"
            );
            std::process::exit(4);
        }
        eprintln!("handoff ceiling ok: ~{per_seed} parks/execution ≤ {ceiling}");
    }

    let doc = CoverageDoc::from_fuzz(&report);
    if let Some(path) = &out_path {
        std::fs::write(path, doc.render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("coverage written to {path}");
    }
    if let Some(path) = &triage_path {
        std::fs::write(path, doc.triage()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("triage report written to {path}");
    }
    if out_path.is_none() && triage_path.is_none() {
        print!("{}", doc.render());
    }

    let mut failed = false;
    if let (Some(min), Some(gain)) = (min_gain_pct, report.gain_pct()) {
        if gain < min {
            eprintln!("signature gain {gain:+.1}% is below the --min-gain-pct {min} gate");
            failed = true;
        } else {
            eprintln!("signature gain {gain:+.1}% clears the --min-gain-pct {min} gate");
        }
    }
    if !report.violations.is_empty() {
        eprintln!("{} violating lineage(s) found", report.violations.len());
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
