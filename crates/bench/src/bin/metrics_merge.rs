//! `metrics_merge` — union sharded sweeps' `metrics.json` documents.
//!
//! A sweep split across CI jobs or machines with `--shard k/n` produces
//! one `metrics.json` per shard. This tool merges them into the document
//! the unsharded sweep would have produced: histogram buckets sum
//! exactly, counters sum, seed counts add — so the merged p50/p99 are
//! identical to the unsharded run's, byte for byte.
//!
//! ```text
//! cargo run -p caa-bench --release --bin metrics_merge -- \
//!     shard0/metrics.json shard1/metrics.json ... [--out merged.json]
//! ```
//!
//! The merged document carries **only the deterministic section**: the
//! `wall_clock` counters (scheduler park/wake handoffs) are host facts
//! that legitimately differ between a sharded and an unsharded run, so
//! they are dropped rather than misleadingly summed. That normalization
//! makes merge-equality a byte equality: merging the 4 shard documents
//! equals merging the single unsharded document.

use caa_harness::metrics::{metrics_json, parse_metrics_json, SweepMetrics};

fn main() {
    let mut inputs: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                }));
            }
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown argument {other}; usage: metrics_merge <metrics.json>... [--out PATH]"
                );
                std::process::exit(2);
            }
            path => inputs.push(path.to_owned()),
        }
    }
    if inputs.is_empty() {
        eprintln!("usage: metrics_merge <metrics.json>... [--out PATH]");
        std::process::exit(2);
    }

    let mut merged = SweepMetrics::default();
    let mut seeds_total: u64 = 0;
    for path in &inputs {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let (seeds, metrics) = parse_metrics_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        });
        seeds_total += seeds;
        merged.merge(&metrics);
    }

    let doc = metrics_json(&merged, seeds_total, false);
    match out_path {
        Some(path) => {
            std::fs::write(&path, &doc).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("merged {} document(s) into {path}", inputs.len());
        }
        None => print!("{doc}"),
    }
    eprint!("{}", merged.summary());
}
