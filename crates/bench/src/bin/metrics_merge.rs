//! `metrics_merge` — union sharded sweeps' `metrics.json` documents.
//!
//! A sweep split across CI jobs or machines with `--shard k/n` produces
//! one `metrics.json` per shard. This tool merges them into the document
//! the unsharded sweep would have produced: histogram buckets sum
//! exactly, counters sum, seed counts add — so the merged p50/p99 are
//! identical to the unsharded run's, byte for byte.
//!
//! ```text
//! cargo run -p caa-bench --release --bin metrics_merge -- \
//!     shard0/metrics.json shard1/metrics.json ... [--out merged.json]
//! ```
//!
//! The merged document carries the deterministic and `critical_path`
//! sections only: the `wall_clock` counters (scheduler park/wake
//! handoffs, driver stage timers) are host facts that legitimately
//! differ between a sharded and an unsharded run, so they are dropped
//! rather than misleadingly summed. That normalization makes
//! merge-equality a byte equality: merging the 4 shard documents equals
//! merging the single unsharded document.

use caa_harness::metrics::{metrics_json, parse_metrics_json, SweepMetrics};
use caa_telemetry::json::MergeCli;

fn main() {
    let usage = "usage: metrics_merge <metrics.json>... [--out PATH]";
    let cli = MergeCli::parse(std::env::args().skip(1), &[]).unwrap_or_else(|e| {
        eprintln!("{e}\n{usage}");
        std::process::exit(2);
    });
    let merged = cli
        .fold(
            |text| {
                let (seeds, metrics) = parse_metrics_json(text)?;
                Ok((seeds, metrics))
            },
            |(seeds, metrics): &mut (u64, SweepMetrics), (s, m)| {
                *seeds += s;
                metrics.merge(&m);
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("{e}\n{usage}");
            std::process::exit(2);
        });
    let (seeds_total, merged) = merged;
    cli.emit(&metrics_json(&merged, seeds_total, false))
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    eprint!("{}", merged.summary());
}
