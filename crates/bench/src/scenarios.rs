//! The paper's experimental scenarios (§5.2, §5.3), parameterised by the
//! quantities the paper sweeps: `Tmmax` (message passing), `Tabo`
//! (abortion) and `Treso` (resolution).
//!
//! Absolute times depend on the application's computation constants, which
//! the paper does not publish; the constants here are calibrated so the
//! base configuration of Figure 9 (`Tmmax`=0.2, `Tabo`=0.1, `Treso`=0.3,
//! 20 iterations) lands in the neighbourhood of the paper's 94.36 s. The
//! claims under reproduction are the *shapes*: linearity, relative
//! coefficients, the >1 s knee, and the ours-vs-CR ordering.

use std::sync::Arc;

use caa_core::exception::Exception;
use caa_core::outcome::HandlerVerdict;
use caa_core::time::{secs, VirtualDuration};
use caa_exgraph::ExceptionGraphBuilder;
use caa_runtime::protocol::ResolutionProtocol;
use caa_runtime::{ActionDef, System, SystemReport, XrrResolution};
use caa_simnet::LatencyModel;

/// Parameters of the §5.2 experiment (Figure 9/10).
#[derive(Debug, Clone, Copy)]
pub struct NestedAbortParams {
    /// Maximum message-passing time `Tmmax` (uniform latencies in
    /// `(0, Tmmax]`).
    pub t_mmax: f64,
    /// Abortion-handler time `Tabo`.
    pub t_abo: f64,
    /// Resolution time `Treso`.
    pub t_reso: f64,
    /// Loop count ("executed in a loop (20 times)").
    pub iterations: u32,
    /// Deterministic seed.
    pub seed: u64,
    /// Acknowledgment timeout of the messaging subsystem; latencies beyond
    /// it retransmit, producing the >1 s knee of Figure 10.
    pub ack_timeout: Option<f64>,
}

impl Default for NestedAbortParams {
    /// The base configuration of Figure 9.
    fn default() -> Self {
        NestedAbortParams {
            t_mmax: 0.2,
            t_abo: 0.1,
            t_reso: 0.3,
            iterations: 20,
            seed: 42,
            ack_timeout: Some(1.0),
        }
    }
}

/// Per-iteration computation before the exception is raised. Calibrated so
/// the Figure 9 base configuration totals ≈ 94 s over 20 iterations.
const NESTED_ABORT_WORK: f64 = 3.4;
/// Handler computation `∆` per recovery.
const HANDLER_WORK: f64 = 0.4;

/// Runs the §5.2 scenario: "three threads take part in a CA action and two
/// of them enter a further nested action … one thread of the containing
/// action raises an exception and the nested action has to be aborted.
/// Another exception is raised by the abortion handler and the resolving
/// exception (covering both exceptions) is then raised in all the threads."
///
/// Returns the full report; `report.elapsed_secs()` is the paper's "total
/// execution time".
#[must_use]
pub fn nested_abort(params: NestedAbortParams) -> SystemReport {
    let graph = ExceptionGraphBuilder::new()
        .resolves("E1∩E3", ["E1", "E3"])
        .build()
        .expect("scenario graph");

    let mut outer = ActionDef::builder("containing")
        .role("r0", 0u32)
        .role("r1", 1u32)
        .role("r2", 2u32)
        .graph(graph);
    for role in ["r0", "r1", "r2"] {
        outer = outer.fallback_handler(role, move |hc| {
            hc.work(secs(HANDLER_WORK))?;
            Ok(HandlerVerdict::Recovered)
        });
    }
    let outer = outer.build().expect("containing action definition");

    let t_abo = params.t_abo;
    let nested = ActionDef::builder("nested")
        .role("n1", 1u32)
        .role("n2", 2u32)
        .abort_handler("n1", move |ac| {
            ac.work(secs(t_abo))?;
            Ok(Some(Exception::new("E3")))
        })
        .abort_handler("n2", move |ac| {
            ac.work(secs(t_abo))?;
            Ok(None)
        })
        .build()
        .expect("nested action definition");

    let mut builder = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(params.t_mmax)))
        .seed(params.seed)
        .resolution_delay(secs(params.t_reso));
    if let Some(t) = params.ack_timeout {
        builder = builder.ack_timeout(secs(t));
    }
    let mut sys = builder.build();

    let iterations = params.iterations;
    let o0 = outer.clone();
    sys.spawn("T0", move |ctx| {
        for _ in 0..iterations {
            ctx.enter(&o0, "r0", |rc| {
                rc.work(secs(NESTED_ABORT_WORK))?;
                rc.raise(Exception::new("E1"))
            })?;
        }
        Ok(())
    });
    for (name, orole, nrole) in [("T1", "r1", "n1"), ("T2", "r2", "n2")] {
        let o = outer.clone();
        let n = nested.clone();
        let orole = orole.to_owned();
        let nrole = nrole.to_owned();
        sys.spawn(name, move |ctx| {
            for _ in 0..iterations {
                ctx.enter(&o, &orole, |rc| {
                    rc.work(secs(NESTED_ABORT_WORK * 0.5))?;
                    rc.enter(&n, &nrole, |nc| nc.work(secs(600.0)))?;
                    Ok(())
                })?;
            }
            Ok(())
        });
    }
    sys.run()
}

/// Parameters of the §5.3 comparison (Figures 12/13).
#[derive(Debug, Clone, Copy)]
pub struct SimultaneousRaiseParams {
    /// Maximum message-passing time `Tmmax`.
    pub t_mmax: f64,
    /// Resolution time `Tres`.
    pub t_res: f64,
    /// Number of participating threads (the paper uses 3).
    pub n: u32,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for SimultaneousRaiseParams {
    /// The base configuration of Figure 12.
    fn default() -> Self {
        SimultaneousRaiseParams {
            t_mmax: 1.0,
            t_res: 0.3,
            n: 3,
            seed: 7,
        }
    }
}

/// Computation before the simultaneous raise, calibrated so the base
/// configuration of Figure 12 lands near the paper's 9.15 s for the 1998
/// algorithm.
const SIMULTANEOUS_WORK: f64 = 6.0;

/// Runs the §5.3 scenario under the given resolution protocol: "Three
/// threads enter a CA action and after some period of computation all of
/// them raise different exceptions nearly at the same time, so exception
/// resolution is required."
#[must_use]
pub fn simultaneous_raise(
    params: SimultaneousRaiseParams,
    protocol: Arc<dyn ResolutionProtocol>,
) -> SystemReport {
    let prims: Vec<caa_core::ExceptionId> = (0..params.n)
        .map(|i| caa_core::ExceptionId::new(format!("e{i}")))
        .collect();
    let graph = caa_exgraph::generate::conjunction_lattice(&prims, prims.len())
        .expect("conjunction lattice");

    let mut action = ActionDef::builder("compare");
    for i in 0..params.n {
        action = action.role(format!("r{i}"), i);
    }
    action = action.graph(graph);
    for i in 0..params.n {
        action = action.fallback_handler(format!("r{i}"), move |hc| {
            hc.work(secs(HANDLER_WORK))?;
            Ok(HandlerVerdict::Recovered)
        });
    }
    let action = action.build().expect("comparison action definition");

    let mut sys = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(params.t_mmax)))
        .seed(params.seed)
        .resolution_delay(secs(params.t_res))
        .protocol(protocol)
        .build();
    for i in 0..params.n {
        let a = action.clone();
        sys.spawn(format!("T{i}"), move |ctx| {
            ctx.enter(&a, &format!("r{i}"), |rc| {
                rc.work(secs(SIMULTANEOUS_WORK))?;
                rc.raise(Exception::new(format!("e{i}")))
            })
            .map(|_| ())
        });
    }
    sys.run()
}

/// Convenience: the §5.3 scenario under the paper's own algorithm.
#[must_use]
pub fn simultaneous_raise_xrr(params: SimultaneousRaiseParams) -> SystemReport {
    simultaneous_raise(params, Arc::new(XrrResolution))
}

/// Total messages attributable to the resolution algorithm in a report.
#[must_use]
pub fn resolution_messages(report: &SystemReport) -> u64 {
    report.net_stats.sent("Exception")
        + report.net_stats.sent("Suspended")
        + report.net_stats.sent("Commit")
        + report.net_stats.sent("Resolve")
}

/// The Lemma 1 bound for the given parameters:
/// `T ≤ (2·nmax+3)·Tmmax + nmax·Tabort + (nmax+1)·(Treso + ∆max)`.
#[must_use]
pub fn lemma1_bound(nmax: f64, t_mmax: f64, t_abort: f64, t_reso: f64, delta: f64) -> f64 {
    (2.0 * nmax + 3.0) * t_mmax + nmax * t_abort + (nmax + 1.0) * (t_reso + delta)
}

/// The handler computation constant `∆` used by the scenarios (exposed for
/// bound computations in reports).
#[must_use]
pub fn handler_work() -> VirtualDuration {
    secs(HANDLER_WORK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caa_baselines::CrResolution;

    #[test]
    fn nested_abort_base_configuration_runs() {
        let report = nested_abort(NestedAbortParams {
            iterations: 2,
            ..NestedAbortParams::default()
        });
        report.expect_ok();
        // Two iterations, three threads: 6 outer recoveries, 4 aborts.
        assert_eq!(report.runtime_stats.recoveries, 6);
        assert_eq!(report.runtime_stats.aborts, 4);
        assert_eq!(report.runtime_stats.resolutions_invoked, 2);
    }

    #[test]
    fn nested_abort_time_scales_with_iterations() {
        let one = nested_abort(NestedAbortParams {
            iterations: 1,
            ..NestedAbortParams::default()
        });
        let three = nested_abort(NestedAbortParams {
            iterations: 3,
            ..NestedAbortParams::default()
        });
        let ratio = three.elapsed_secs() / one.elapsed_secs();
        assert!(
            (2.5..3.5).contains(&ratio),
            "3 iterations should take ~3x one: ratio {ratio:.2}"
        );
    }

    #[test]
    fn simultaneous_raise_runs_under_both_protocols() {
        let p = SimultaneousRaiseParams::default();
        let ours = simultaneous_raise_xrr(p);
        let cr = simultaneous_raise(p, Arc::new(CrResolution));
        assert!(ours.is_ok() && cr.is_ok());
        assert!(
            cr.elapsed_secs() > ours.elapsed_secs(),
            "CR {:.2}s must exceed ours {:.2}s",
            cr.elapsed_secs(),
            ours.elapsed_secs()
        );
        assert_eq!(ours.runtime_stats.resolutions_invoked, 1);
        assert!(cr.runtime_stats.resolutions_invoked > 1);
    }
}
