//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5 of Xu, Romanovsky & Randell, ICDCS 1998).
//!
//! * [`scenarios`] — the §5.2 nested-abort experiment (Figures 9/10) and
//!   the §5.3 algorithm comparison (Figures 12/13), parameterised by
//!   `Tmmax`, `Tabo` and `Treso`;
//! * `paper_tables` (binary) — prints the same rows and series the paper
//!   reports: `cargo run -p caa-bench --release --bin paper_tables all`;
//! * Criterion benches under `benches/` measure the wall-clock cost of the
//!   simulated experiments and of exception-graph resolution.
//!
//! See `EXPERIMENTS.md` at the workspace root for paper-vs-measured values.
//!
//! # Determinism
//!
//! The *simulated* quantities (virtual durations, message counts) are
//! seed-determined and identical on every run; only the wall-clock cost
//! of simulating them — what Criterion measures — varies with the host.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod scenarios;

pub use scenarios::{
    lemma1_bound, nested_abort, resolution_messages, simultaneous_raise, simultaneous_raise_xrr,
    NestedAbortParams, SimultaneousRaiseParams,
};
