//! `coverage_merge` contract (satellite of the coverage-guided fuzz
//! subsystem): the merged document of an evenly sharded sweep equals the
//! unsharded sweep's `coverage.json` **byte for byte** — executions add,
//! path counters sum, signature maps union per key, violation lines
//! union — so the nightly CI job can split a 2k-seed run across jobs and
//! still publish the single-document triage artifact.

use std::process::Command;

use caa_harness::fuzz::CoverageDoc;
use caa_harness::sweep::{sweep, Shard, SweepConfig};

fn sweep_doc(shard: Option<Shard>) -> CoverageDoc {
    CoverageDoc::from_sweep(&sweep(&SweepConfig {
        seeds: 2000,
        shard,
        check_replay: false,
        corpus_dir: None,
        ..SweepConfig::default()
    }))
}

#[test]
fn sharded_coverage_documents_merge_to_the_unsharded_bytes() {
    let full = sweep_doc(None).render();
    let shards: Vec<String> = (0..2)
        .map(|index| sweep_doc(Some(Shard { index, count: 2 })).render())
        .collect();
    assert_ne!(shards[0], shards[1], "shards must cover disjoint seeds");

    let dir = std::env::temp_dir().join(format!("caa-coverage-merge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut paths = Vec::new();
    for (i, doc) in shards.iter().enumerate() {
        let path = dir.join(format!("shard{i}.json"));
        std::fs::write(&path, doc).expect("write shard doc");
        paths.push(path);
    }
    let merged_path = dir.join("merged.json");

    let out = Command::new(env!("CARGO_BIN_EXE_coverage_merge"))
        .args(paths.iter().map(|p| p.as_os_str()))
        .arg("--out")
        .arg(&merged_path)
        .arg("--triage")
        .arg(dir.join("triage.md"))
        .output()
        .expect("run coverage_merge");
    assert!(
        out.status.success(),
        "coverage_merge failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let merged = std::fs::read_to_string(&merged_path).expect("read merged doc");
    assert!(
        merged == full,
        "merged shards diverge from the unsharded document:\n--- merged ---\n{merged}\n\
         --- unsharded ---\n{full}"
    );

    // The triage artifact renders from the same merged document.
    let triage = std::fs::read_to_string(dir.join("triage.md")).expect("read triage");
    assert!(triage.contains("# Coverage triage"), "{triage}");
    assert!(triage.contains("executions: 2000"), "{triage}");
    std::fs::remove_dir_all(&dir).ok();
}
