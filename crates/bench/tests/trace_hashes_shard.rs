//! `trace_hashes --shard k/n` contract: shards are disjoint, and the
//! sorted union of all shards' seed lines equals the unsharded output —
//! so a 12k-seed hash gate can split across CI jobs exactly like
//! `sweep_bench` does. (The prodcell section is emitted by shard 0 only;
//! it is not seed-range work.)

use std::collections::BTreeMap;
use std::process::Command;

fn run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_trace_hashes"))
        .args(args)
        .output()
        .expect("run trace_hashes");
    assert!(
        out.status.success(),
        "trace_hashes {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn sharded_hash_runs_union_to_the_unsharded_output() {
    let full = run(&["--seeds", "48", "--prodcell", "2"]);
    let mut union: BTreeMap<u64, String> = BTreeMap::new();
    let mut prodcell_lines = Vec::new();
    for index in 0..3 {
        let shard = run(&[
            "--seeds",
            "48",
            "--prodcell",
            "2",
            "--shard",
            &format!("{index}/3"),
        ]);
        for line in shard.lines() {
            if line.starts_with("prodcell") {
                assert_eq!(index, 0, "only shard 0 may emit the prodcell section");
                prodcell_lines.push(line.to_owned());
                continue;
            }
            let seed: u64 = line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("seed field");
            assert_eq!(
                seed % 3,
                index,
                "shard {index}/3 emitted a seed outside its residue class"
            );
            let previous = union.insert(seed, line.to_owned());
            assert!(previous.is_none(), "seed {seed} appeared in two shards");
        }
    }
    let mut rebuilt: Vec<String> = union.into_values().collect();
    rebuilt.extend(prodcell_lines);
    let rebuilt = rebuilt.join("\n") + "\n";
    assert_eq!(
        rebuilt, full,
        "sorted union of the shards must equal the unsharded run"
    );
}
