//! Criterion bench over the §5.3 comparison (Figures 12/13): the same
//! simultaneous-raise workload under each resolution protocol.

use std::sync::Arc;

use caa_baselines::{CrResolution, Rom96Resolution};
use caa_bench::{simultaneous_raise, SimultaneousRaiseParams};
use caa_runtime::protocol::ResolutionProtocol;
use caa_runtime::XrrResolution;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_simultaneous_raise");
    group.sample_size(10);
    let protocols: Vec<(&str, Arc<dyn ResolutionProtocol>)> = vec![
        ("xrr98", Arc::new(XrrResolution)),
        ("rom96", Arc::new(Rom96Resolution)),
        ("cr86", Arc::new(CrResolution)),
    ];
    for (name, protocol) in &protocols {
        for n in [3u32, 5] {
            group.bench_with_input(BenchmarkId::new(*name, format!("n{n}")), &n, |b, &n| {
                b.iter(|| {
                    simultaneous_raise(
                        SimultaneousRaiseParams {
                            n,
                            ..SimultaneousRaiseParams::default()
                        },
                        Arc::clone(protocol),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
