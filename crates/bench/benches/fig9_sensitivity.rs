//! Criterion bench over the §5.2 experiment (Figure 9/10): wall-clock cost
//! of regenerating selected sweep points. The *virtual* results themselves
//! are printed by `paper_tables fig9`.

use caa_bench::{nested_abort, NestedAbortParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_nested_abort");
    group.sample_size(10);
    for t_mmax in [0.2f64, 1.0, 2.0] {
        group.bench_with_input(
            BenchmarkId::new("tmmax", format!("{t_mmax:.1}")),
            &t_mmax,
            |b, &t| {
                b.iter(|| {
                    nested_abort(NestedAbortParams {
                        t_mmax: t,
                        iterations: 2,
                        ..NestedAbortParams::default()
                    })
                });
            },
        );
    }
    for t_abo in [0.1f64, 1.1, 2.1] {
        group.bench_with_input(
            BenchmarkId::new("tabo", format!("{t_abo:.1}")),
            &t_abo,
            |b, &t| {
                b.iter(|| {
                    nested_abort(NestedAbortParams {
                        t_abo: t,
                        iterations: 2,
                        ..NestedAbortParams::default()
                    })
                });
            },
        );
    }
    for t_reso in [0.3f64, 1.3, 2.3] {
        group.bench_with_input(
            BenchmarkId::new("treso", format!("{t_reso:.1}")),
            &t_reso,
            |b, &t| {
                b.iter(|| {
                    nested_abort(NestedAbortParams {
                        t_reso: t,
                        iterations: 2,
                        ..NestedAbortParams::default()
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
