//! Sweep-throughput bench: how many deterministic simulation seeds per
//! second the harness explores (the "as fast as the hardware allows" axis
//! of the ROADMAP — each seed is a full multi-threaded virtual-time run
//! with trace recording and oracle checking).

use caa_harness::sweep::{sweep, SweepConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness_sweep");
    group.sample_size(10);
    for &seeds in &[50u64, 200] {
        group.bench_with_input(BenchmarkId::new("seeds", seeds), &seeds, |b, &n| {
            b.iter(|| {
                let report = sweep(&SweepConfig {
                    seeds: n,
                    check_replay: false,
                    ..SweepConfig::default()
                });
                assert!(report.all_passed(), "{}", report.summary());
                report.trace_entries
            });
        });
    }
    group.bench_function("seeds_with_replay/100", |b| {
        b.iter(|| {
            let report = sweep(&SweepConfig {
                seeds: 100,
                check_replay: true,
                ..SweepConfig::default()
            });
            assert!(report.all_passed(), "{}", report.summary());
            report.trace_entries
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
