//! Criterion micro-benches of exception-graph resolution (§3.2): the
//! operation every participant's run-time system executes during recovery.

use caa_core::exception::ExceptionId;
use caa_exgraph::generate::conjunction_lattice;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("exception_graph_resolve");
    for n in [4usize, 8, 12] {
        let prims: Vec<ExceptionId> = (0..n).map(|i| ExceptionId::new(format!("e{i}"))).collect();
        // Pairs-and-triples lattice: realistic application-scale graphs.
        let graph = conjunction_lattice(&prims, 3.min(n)).unwrap();
        let raised: Vec<ExceptionId> = prims.iter().take(3).cloned().collect();
        group.bench_with_input(
            BenchmarkId::new("triple_raise", format!("n{n}_nodes{}", graph.len())),
            &graph,
            |b, g| {
                b.iter(|| black_box(g.resolve(black_box(&raised))));
            },
        );
    }
    // Figure 7's actual graph.
    let fig7 = caa_prodcell::move_loaded_table_graph();
    let both = [ExceptionId::new("vm_stop"), ExceptionId::new("rm_stop")];
    group.bench_function("figure7_dual_motor", |b| {
        b.iter(|| black_box(fig7.resolve(black_box(&both))));
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("exception_graph_generate");
    group.sample_size(20);
    for n in [6usize, 10] {
        let prims: Vec<ExceptionId> = (0..n).map(|i| ExceptionId::new(format!("e{i}"))).collect();
        group.bench_with_input(BenchmarkId::new("lattice3", n), &prims, |b, p| {
            b.iter(|| conjunction_lattice(black_box(p), 3).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resolution, bench_generation);
criterion_main!(benches);
